"""Schedule-plan cache: unit behavior and golden runtime determinism.

The contract under test is twofold: the cache is a *pure* memo (seeded
runs are bit-identical with it on or off — latencies, power bins, and
the traced obs event stream, including chaos runs with failover
replans), and it actually works (warm runs serve hits, invalidation
drops exactly the stale graph's entries).
"""

import numpy as np
import pytest

from conftest import chain_graph, small_kernel
from repro import apps as apps_mod
from repro import runtime
from repro.faults.events import FaultSchedule
from repro.obs import MetricsRegistry, SpanTracer
from repro.scheduler import (
    KernelGraph,
    PolyScheduler,
    SchedulePlanCache,
    StaticScheduler,
)
from repro.scheduler.plan_cache import clear_plan_cache, plan_cache

from test_scheduler import _devices, _diamond_graph, _diamond_spaces

NOISE_SIGMA = 0.02


@pytest.fixture()
def cache():
    return SchedulePlanCache(max_entries=8)


def _schedule_once(cache, bound=400.0, avail=(0.0, 0.0)):
    graph = _diamond_graph()
    devices = _devices()
    for d, a in zip(devices, avail):
        d.available_at_ms = a
    scheduler = PolyScheduler(_diamond_spaces(), bound, plan_cache=cache)
    schedule, steps = scheduler.schedule(graph, devices)
    return graph, devices, scheduler, schedule, steps


class TestCacheUnit:
    def test_miss_then_hit_returns_same_plan(self, cache):
        graph, devices, scheduler, schedule, steps = _schedule_once(cache)
        assert cache.stats()["misses"] == 1
        again, again_steps = scheduler.schedule(graph, devices)
        assert cache.stats()["hits"] == 1
        assert again is schedule
        assert again_steps == steps

    def test_min_latency_schedule_shares_entries(self, cache):
        graph = _diamond_graph()
        devices = _devices()
        scheduler = PolyScheduler(
            _diamond_spaces(), 400.0, plan_cache=cache
        )
        first = scheduler.min_latency_schedule(graph, devices)
        # Same key as schedule(optimize_energy=False): a hit, no steps.
        second, steps = scheduler.schedule(
            graph, devices, optimize_energy=False
        )
        assert second is first
        assert steps == []
        assert cache.stats()["hits"] == 1

    def test_exact_avail_mismatch_is_miss_and_refresh(self, cache):
        # 0.1 ms lands in the same 0.25 ms quantization bucket as 0.0,
        # but bit-identity demands an exact match: recompute + refresh.
        _schedule_once(cache, avail=(0.0, 0.0))
        _schedule_once(cache, avail=(0.1, 0.0))
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 2
        assert stats["size"] == 1  # refreshed in place, not duplicated
        # The refreshed entry serves the new exact state.
        _schedule_once(cache, avail=(0.1, 0.0))
        assert cache.stats()["hits"] == 1

    def test_different_bucket_is_separate_entry(self, cache):
        _schedule_once(cache, avail=(0.0, 0.0))
        _schedule_once(cache, avail=(10.0, 0.0))
        assert cache.stats()["size"] == 2

    def test_lru_eviction(self):
        tiny = SchedulePlanCache(max_entries=2)
        for i in range(4):
            _schedule_once(tiny, avail=(10.0 * i, 0.0))
        stats = tiny.stats()
        assert stats["size"] == 2
        assert stats["evictions"] == 2
        # Oldest states were evicted; the two most recent still hit.
        _schedule_once(tiny, avail=(30.0, 0.0))
        assert tiny.stats()["hits"] == 1

    def test_invalidate_by_signature(self, cache):
        graph, devices, scheduler, _, _ = _schedule_once(cache)
        other = chain_graph(n=2)
        assert cache.invalidate(other.structural_signature()) == 0
        assert cache.invalidate(graph.structural_signature()) == 1
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1

    def test_invalidate_all(self, cache):
        _schedule_once(cache, avail=(0.0, 0.0))
        _schedule_once(cache, avail=(10.0, 0.0))
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_structural_signature_tracks_topology(self):
        a, b = chain_graph(n=3), chain_graph(n=3)
        assert a.structural_signature() == b.structural_signature()
        c = chain_graph(n=3)
        c.add_kernel(small_kernel("tail", elements=128))
        c.connect("K2", "tail")
        assert c.structural_signature() != a.structural_signature()

    def test_bind_metrics_mirrors_counters(self, cache):
        registry = MetricsRegistry()
        cache.bind_metrics(registry)
        _schedule_once(cache)
        _schedule_once(cache)
        assert registry.value("plan_cache_misses_total") == 1
        assert registry.value("plan_cache_hits_total") == 1
        cache.bind_metrics(None)
        _schedule_once(cache)
        assert registry.value("plan_cache_hits_total") == 1  # detached

    def test_invalidation_hook_bookkeeping(self, cache):
        class Owner:
            pass

        owner = Owner()
        assert not cache.has_invalidation_hook
        cache.bind_invalidation(owner)
        assert cache.has_invalidation_hook
        assert cache.bound_to(owner)
        assert not cache.bound_to(Owner())

    def test_clear_resets_counters_keeps_hooks(self, cache):
        class Owner:
            pass

        owner = Owner()
        cache.bind_invalidation(owner)
        _schedule_once(cache)
        cache.clear()
        stats = cache.stats()
        assert stats["misses"] == 0 and stats["size"] == 0
        assert cache.has_invalidation_hook

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            SchedulePlanCache(max_entries=0)
        with pytest.raises(ValueError, match="quantization"):
            SchedulePlanCache(avail_quant_ms=0.0)

    def test_module_cache_clear_helper(self):
        _schedule_once(plan_cache)
        assert len(plan_cache) > 0
        clear_plan_cache()
        assert len(plan_cache) == 0


class TestStaticSchedulerPolicyIsolation:
    def test_two_graphs_keep_their_frozen_policies(self):
        """Regression: interleaving a second application through one
        StaticScheduler must not clobber the first one's offline
        max-efficiency/min-latency decision."""
        spaces = _diamond_spaces()
        scheduler = StaticScheduler(spaces, 500.0)
        diamond = _diamond_graph()
        first = scheduler.schedule(diamond, _devices())

        # A serial chain over the same kernels busts 60% of the bound at
        # zero load, freezing the *other* policy (min-latency).
        serial = KernelGraph("serial")
        for i in range(1, 5):
            serial.add_kernel(small_kernel(f"K{i}", elements=256))
        for a, b in (("K1", "K2"), ("K2", "K3"), ("K3", "K4")):
            serial.connect(a, b, nbytes=1024)
        scheduler.schedule(serial, _devices())
        assert (
            scheduler._fixed_choice["diamond"]
            != scheduler._fixed_choice["serial"]
        )

        replay = scheduler.schedule(diamond, _devices())
        assert [
            (a.kernel_name, a.point.index, a.device_id) for a in first
        ] == [
            (a.kernel_name, a.point.index, a.device_id) for a in replay
        ]

    def test_policy_frozen_per_graph_name(self):
        spaces = _diamond_spaces()
        scheduler = StaticScheduler(spaces, 1_000.0)
        scheduler.schedule(_diamond_graph(), _devices())
        small = KernelGraph("tiny")
        small.add_kernel(small_kernel("K1", elements=256))
        scheduler.schedule(small, _devices())
        assert set(scheduler._fixed_choice) == {"diamond", "tiny"}


def _sim(app, system, spaces, arrivals, seed=3, **kw):
    return runtime.run_simulation(system, app, spaces, arrivals, seed=seed, **kw)


@pytest.fixture(scope="module")
def asr_setting():
    system = runtime.setting("I", "Heter-Poly")
    app = apps_mod.build("ASR")
    spaces = app.explore(system.platforms)
    arrivals = runtime.poisson_arrivals(
        60.0, 2_000.0, rng=np.random.default_rng(3)
    )
    return system, app, spaces, arrivals


class TestGoldenDeterminism:
    def test_cache_on_off_bit_identical(self, asr_setting):
        system, app, spaces, arrivals = asr_setting
        base = _sim(app, system, spaces, arrivals)
        cache = SchedulePlanCache()
        cold = _sim(app, system, spaces, arrivals, plan_cache=cache)
        warm = _sim(app, system, spaces, arrivals, plan_cache=cache)
        for run in (cold, warm):
            assert [r.latency_ms for r in base.requests] == [
                r.latency_ms for r in run.requests
            ]
            assert np.array_equal(base.power_bins_w, run.power_bins_w)
        assert cache.stats()["hits"] > 0

    def test_static_system_bit_identical(self):
        system = runtime.setting("I", "Homo-GPU")
        app = apps_mod.build("WT")
        spaces = app.explore(system.platforms)
        arrivals = runtime.poisson_arrivals(
            40.0, 1_500.0, rng=np.random.default_rng(5)
        )
        base = _sim(app, system, spaces, arrivals, seed=5)
        cached = _sim(
            app, system, spaces, arrivals, seed=5,
            plan_cache=SchedulePlanCache(),
        )
        assert [r.latency_ms for r in base.requests] == [
            r.latency_ms for r in cached.requests
        ]
        assert np.array_equal(base.power_bins_w, cached.power_bins_w)

    def test_traced_event_stream_identical(self, asr_setting):
        system, app, spaces, arrivals = asr_setting
        t0, t1 = SpanTracer(), SpanTracer()
        _sim(app, system, spaces, arrivals, tracer=t0)
        _sim(
            app, system, spaces, arrivals, tracer=t1,
            plan_cache=SchedulePlanCache(),
        )
        assert t0.events == t1.events

    def test_chaos_run_identical_and_invalidates(self, asr_setting):
        """Fault/recovery transitions replan through the cache: same
        events (including failovers), same latencies/power, and the
        invalidation hook actually fires."""
        system, app, spaces, arrivals = asr_setting
        schedule = FaultSchedule.from_mtbf(
            [d for d, _ in system.device_inventory()],
            duration_ms=2_000.0,
            mtbf_ms=900.0,
            mttr_ms=400.0,
            seed=11,
        )
        t0, t1 = SpanTracer(), SpanTracer()
        base = _sim(app, system, spaces, arrivals, faults=schedule, tracer=t0)
        cache = SchedulePlanCache()
        cached = _sim(
            app, system, spaces, arrivals, faults=schedule, tracer=t1,
            plan_cache=cache,
        )
        assert t0.events == t1.events
        assert [r.latency_ms for r in base.requests] == [
            r.latency_ms for r in cached.requests
        ]
        assert np.array_equal(base.power_bins_w, cached.power_bins_w)
        assert cache.stats()["invalidations"] > 0

    def test_node_binds_invalidation_hook(self, asr_setting):
        system, app, spaces, _ = asr_setting
        cache = SchedulePlanCache()
        node = runtime.LeafNode(system, app, spaces, plan_cache=cache)
        assert cache.bound_to(node)


class TestNoiseBuffer:
    def test_buffered_draws_match_scalar_stream(self):
        """Vectorized lognormal refills replay the exact scalar stream
        (the bit-identity contract's only RNG-order dependency)."""
        n = 5_000  # spans multiple 2048-sized refills
        scalar_rng = np.random.default_rng(123)
        expect = [scalar_rng.lognormal(0.0, NOISE_SIGMA) for _ in range(n)]
        buf_rng = np.random.default_rng(123)
        got = []
        buf = np.empty(0)
        pos = 0
        for _ in range(n):
            if pos >= len(buf):
                buf = buf_rng.lognormal(0.0, NOISE_SIGMA, size=2048)
                pos = 0
            got.append(float(buf[pos]))
            pos += 1
        assert got == expect
