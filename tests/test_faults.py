"""Tests for the fault-injection and failover subsystem (repro.faults)."""

import math

import numpy as np
import pytest

from repro import runtime
from repro.experiments import harness
from repro.faults import (
    DeviceHealth,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    RetryPolicy,
)
from repro.lint import LintContext, run_lint
from repro.runtime import availability, mean_recovery_ms
from repro.runtime.node import LeafNode, RequestRecord
from repro.runtime.simulation import SimulationResult

from conftest import synthetic_space
from repro.hardware import AMD_W9100, XILINX_7V3
from repro.hardware.specs import DeviceType
from repro.scheduler import DeviceSlot


@pytest.fixture(scope="module")
def heter_setup():
    """ASR on the Setting-I Heter-Poly node, DSE shared with the
    experiments harness cache."""
    app = harness.get_app("ASR")
    system = runtime.setting("I", "Heter-Poly")
    spaces = harness.spaces_for(app, system)
    return app, system, spaces


def _arrivals(rps, duration_ms, seed=11):
    return runtime.poisson_arrivals(
        rps, duration_ms, rng=np.random.default_rng(seed)
    )


class TestFaultEvents:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, FaultKind.DEVICE_CRASH, "gpu0")
        with pytest.raises(ValueError):
            FaultEvent(0.0, FaultKind.DEVICE_CRASH, "")
        with pytest.raises(ValueError):
            FaultEvent(0.0, FaultKind.SLOWDOWN, "gpu0", magnitude=0.5)

    def test_schedule_sorts_events(self):
        sched = FaultSchedule(
            (
                FaultEvent(500.0, FaultKind.RECOVERY, "a"),
                FaultEvent(100.0, FaultKind.DEVICE_CRASH, "a"),
            )
        )
        assert [e.time_ms for e in sched] == [100.0, 500.0]

    def test_single_crash_helper(self):
        sched = FaultSchedule.single_crash("fpga0", at_ms=1000.0, recover_at_ms=3000.0)
        assert len(sched) == 2
        assert sched.down_intervals("fpga0") == [(1000.0, 3000.0)]
        assert not sched.permanently_failed("fpga0")

    def test_unrecovered_crash_is_permanent(self):
        sched = FaultSchedule.single_crash("fpga0", at_ms=1000.0)
        lo, hi = sched.down_intervals("fpga0")[0]
        assert lo == 1000.0 and math.isinf(hi)
        assert sched.permanently_failed("fpga0")

    def test_nested_crashes_collapse(self):
        sched = FaultSchedule(
            (
                FaultEvent(100.0, FaultKind.DEVICE_CRASH, "a"),
                FaultEvent(200.0, FaultKind.DEVICE_CRASH, "a"),
                FaultEvent(300.0, FaultKind.RECOVERY, "a"),
            )
        )
        assert sched.down_intervals("a") == [(100.0, 300.0)]

    def test_first_crash_overlap(self):
        sched = FaultSchedule.single_crash("a", at_ms=100.0, recover_at_ms=200.0)
        # Execution fully before the outage: unaffected.
        assert sched.first_crash_overlap("a", 0.0, 90.0) is None
        # Straddles the crash: fails at the crash instant.
        assert sched.first_crash_overlap("a", 50.0, 150.0) == 100.0
        # Dispatched onto the dead device: fails at its own start.
        assert sched.first_crash_overlap("a", 120.0, 180.0) == 120.0
        # After the recovery: unaffected.
        assert sched.first_crash_overlap("a", 250.0, 300.0) is None

    def test_from_mtbf_deterministic(self):
        a = FaultSchedule.from_mtbf(["d0", "d1"], 10_000.0, 2_000.0, 500.0, seed=3)
        b = FaultSchedule.from_mtbf(["d0", "d1"], 10_000.0, 2_000.0, 500.0, seed=3)
        c = FaultSchedule.from_mtbf(["d0", "d1"], 10_000.0, 2_000.0, 500.0, seed=4)
        assert list(a) == list(b)
        assert list(a) != list(c)
        assert all(e.time_ms <= 10_000.0 for e in a)

    def test_from_mtbf_alternates_crash_and_recovery(self):
        sched = FaultSchedule.from_mtbf(["d0"], 50_000.0, 2_000.0, 500.0, seed=0)
        kinds = [e.kind for e in sched.for_device("d0")]
        assert kinds, "expected at least one fault at this MTBF"
        assert kinds[0] == FaultKind.DEVICE_CRASH
        for first, second in zip(kinds, kinds[1:]):
            assert first != second  # strict crash/recovery alternation


class TestRetryPolicy:
    def test_backoff_caps(self):
        p = RetryPolicy(backoff_base_ms=5.0, backoff_cap_ms=80.0)
        assert p.backoff_ms(0) == 5.0
        assert p.backoff_ms(3) == 40.0
        assert p.backoff_ms(10) == 80.0

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=-1.0)

    def test_bounded_property(self):
        assert RetryPolicy().bounded
        assert not RetryPolicy(backoff_cap_ms=float("inf")).bounded
        assert not RetryPolicy(backoff_cap_ms=0.0).bounded


class TestInjectorWiring:
    def test_unknown_device_rejected_at_bind(self, heter_setup):
        app, system, spaces = heter_setup
        node = LeafNode(system, app, spaces)
        injector = FaultInjector(FaultSchedule.single_crash("nope", at_ms=1.0))
        with pytest.raises(ValueError, match="unknown devices"):
            injector.bind(node)

    def test_double_bind_rejected(self, heter_setup):
        app, system, spaces = heter_setup
        injector = FaultInjector(FaultSchedule.single_crash("fpga0", at_ms=1.0))
        node = LeafNode(system, app, spaces)
        injector.bind(node)
        # One injector drives one node, and one node takes one injector.
        with pytest.raises(RuntimeError):
            injector.bind(LeafNode(system, app, spaces))
        second = FaultInjector(FaultSchedule.single_crash("fpga1", at_ms=1.0))
        with pytest.raises(RuntimeError):
            node.attach_injector(second)

    def test_advance_applies_health_transitions(self, heter_setup):
        app, system, spaces = heter_setup
        node = LeafNode(system, app, spaces)
        sched = FaultSchedule(
            (
                FaultEvent(10.0, FaultKind.SLOWDOWN, "fpga0", magnitude=2.0),
                FaultEvent(20.0, FaultKind.DEVICE_CRASH, "fpga1"),
                FaultEvent(30.0, FaultKind.RECOVERY, "fpga1"),
            )
        )
        injector = FaultInjector(sched)
        injector.bind(node)
        by_id = {d.device_id: d for d in node.devices}
        injector.advance(15.0)
        assert by_id["fpga0"].health == DeviceHealth.DEGRADED
        assert by_id["fpga0"].slowdown == 2.0
        injector.advance(25.0)
        assert by_id["fpga1"].health == DeviceHealth.FAILED
        assert not by_id["fpga1"].is_schedulable or not by_id["fpga1"].failure_detected
        injector.advance(35.0)
        assert by_id["fpga1"].health == DeviceHealth.HEALTHY
        assert by_id["fpga0"].health == DeviceHealth.DEGRADED  # still throttled

    def test_transient_consumed_once(self, heter_setup):
        app, system, spaces = heter_setup
        node = LeafNode(system, app, spaces)
        sched = FaultSchedule((FaultEvent(100.0, FaultKind.TRANSIENT, "gpu0"),))
        injector = FaultInjector(sched)
        injector.bind(node)
        gpu = next(d for d in node.devices if d.device_id == "gpu0")
        first = injector.execution_fault(gpu, 50.0, 150.0)
        assert first == (100.0, FaultKind.TRANSIENT)
        assert injector.execution_fault(gpu, 50.0, 150.0) is None


class TestChaosIntegration:
    def test_single_fpga_crash_availability(self, heter_setup):
        """Acceptance: one FPGA dying mid-run on Heter-Poly at moderate
        load completes via failover with >= 99% availability and a
        reported recovery time."""
        app, system, spaces = heter_setup
        chaos = FaultSchedule.single_crash("fpga0", at_ms=4_000.0)
        result = runtime.run_simulation(
            system, app, spaces, _arrivals(30.0, 8_000.0), faults=chaos
        )
        assert result.availability >= 0.99
        report = result.faults
        assert len(report.recoveries) == 1
        rec = report.recoveries[0]
        assert rec.device_id == "fpga0"
        assert rec.failed_ms == 4_000.0
        assert rec.recovery_ms > 0.0
        assert report.mean_recovery_ms == pytest.approx(rec.recovery_ms)
        assert result.p99_ms <= 3 * app.qos_ms  # failover, not meltdown

    def test_no_dispatch_to_dead_device_after_detection(self, heter_setup):
        app, system, spaces = heter_setup
        node = LeafNode(system, app, spaces)
        chaos = FaultSchedule.single_crash(
            "fpga0", at_ms=3_000.0, recover_at_ms=6_000.0
        )
        injector = FaultInjector(chaos)
        injector.bind(node)
        for t in _arrivals(30.0, 8_000.0):
            node.submit(t)
        (rec,) = injector.report.recoveries
        fpga0 = next(d for d in node.devices if d.device_id == "fpga0")
        for r in fpga0.records:
            alive = r.end_ms <= 3_000.0 + 1e-9 or r.start_ms >= 6_000.0 - 1e-9
            aborted = r.end_ms == r.start_ms
            assert alive or aborted, (r.start_ms, r.end_ms)
            # Nothing is even *reserved* on the quarantined device
            # between detection and recovery.
            if not aborted:
                assert not (rec.detected_ms < r.start_ms < 6_000.0)

    def test_deterministic_chaos(self, heter_setup):
        app, system, spaces = heter_setup
        arrivals = _arrivals(25.0, 5_000.0)
        chaos = FaultSchedule.single_crash("fpga1", at_ms=2_000.0)
        a = runtime.run_simulation(system, app, spaces, arrivals, faults=chaos)
        b = runtime.run_simulation(system, app, spaces, arrivals, faults=chaos)
        assert [r.latency_ms for r in a.requests] == [
            r.latency_ms for r in b.requests
        ]
        assert a.faults.summary() == b.faults.summary()

    def test_empty_schedule_bit_identical_to_no_faults(self, heter_setup):
        """The injection machinery must be invisible when no fault
        fires: same latencies, same power bins, bit for bit."""
        app, system, spaces = heter_setup
        arrivals = _arrivals(30.0, 6_000.0)
        plain = runtime.run_simulation(system, app, spaces, arrivals)
        chaos = runtime.run_simulation(
            system, app, spaces, arrivals, faults=FaultSchedule(())
        )
        assert [r.latency_ms for r in plain.requests] == [
            r.latency_ms for r in chaos.requests
        ]
        assert np.array_equal(plain.power_bins_w, chaos.power_bins_w)
        assert chaos.availability == 1.0
        assert chaos.faults.retries == 0 and not chaos.faults.recoveries

    def test_slowdown_stretches_latency(self, heter_setup):
        app, system, spaces = heter_setup
        arrivals = _arrivals(20.0, 5_000.0)
        throttle = FaultSchedule(
            tuple(
                FaultEvent(0.0, FaultKind.SLOWDOWN, f"fpga{i}", magnitude=4.0)
                for i in range(5)
            )
            + (FaultEvent(0.0, FaultKind.SLOWDOWN, "gpu0", magnitude=4.0),)
        )
        base = runtime.run_simulation(system, app, spaces, arrivals)
        slow = runtime.run_simulation(
            system, app, spaces, arrivals, faults=throttle
        )
        assert slow.mean_latency_ms > base.mean_latency_ms

    def test_recovered_device_rejoins(self, heter_setup):
        app, system, spaces = heter_setup
        node = LeafNode(system, app, spaces)
        chaos = FaultSchedule.single_crash(
            "fpga0", at_ms=2_000.0, recover_at_ms=4_000.0
        )
        FaultInjector(chaos).bind(node)
        for t in _arrivals(30.0, 8_000.0):
            node.submit(t)
        fpga0 = next(d for d in node.devices if d.device_id == "fpga0")
        assert fpga0.health == DeviceHealth.HEALTHY
        assert any(r.start_ms >= 4_000.0 and r.end_ms > r.start_ms
                   for r in fpga0.records), "recovered device never reused"


class TestGracefulDegradation:
    def test_blackout_sheds_low_priority_first(self, heter_setup):
        """All five FPGAs die under heavy load: the planner sheds the
        lowest-priority requests so the GPU can serve the rest."""
        app, system, spaces = heter_setup
        blackout = FaultSchedule(
            tuple(
                FaultEvent(2_000.0, FaultKind.DEVICE_CRASH, f"fpga{i}")
                for i in range(5)
            )
        )
        arrivals = _arrivals(80.0, 6_000.0, seed=5)
        priorities = list(np.random.default_rng(9).uniform(size=len(arrivals)))
        result = runtime.run_simulation(
            system, app, spaces, arrivals,
            faults=blackout, priorities=priorities,
        )
        report = result.faults
        assert report.shed > 0
        dropped = [
            p for r, p in zip(result.requests, priorities) if r.dropped
        ]
        served = [
            p for r, p in zip(result.requests, priorities) if r.served
        ]
        assert dropped and served
        assert max(dropped) < 0.95  # never sheds above MAX_SHED
        assert np.mean(dropped) < np.mean(served)

    def test_default_priority_never_shed(self, heter_setup):
        app, system, spaces = heter_setup
        blackout = FaultSchedule(
            tuple(
                FaultEvent(2_000.0, FaultKind.DEVICE_CRASH, f"fpga{i}")
                for i in range(5)
            )
        )
        result = runtime.run_simulation(
            system, app, spaces, _arrivals(80.0, 5_000.0, seed=5),
            faults=blackout,
        )
        assert result.faults.shed == 0  # priority defaults to 1.0
        assert not any(r.dropped for r in result.requests)


class TestResilienceMetrics:
    def test_availability(self):
        assert availability(99, 100) == pytest.approx(0.99)
        assert math.isnan(availability(0, 0))
        with pytest.raises(ValueError):
            availability(5, 3)
        with pytest.raises(ValueError):
            availability(-1, 3)

    def test_mean_recovery(self):
        assert mean_recovery_ms([50.0, 150.0]) == pytest.approx(100.0)
        assert math.isnan(mean_recovery_ms([]))
        with pytest.raises(ValueError):
            mean_recovery_ms([-1.0])

    def test_mean_recovery_rejects_non_finite(self):
        # A crash with no matching recovery must be excluded by the
        # caller, not smuggled in as inf/nan (which would poison the
        # mean silently).
        with pytest.raises(ValueError, match="finite"):
            mean_recovery_ms([50.0, math.inf])
        with pytest.raises(ValueError, match="finite"):
            mean_recovery_ms([math.nan])

    def test_mean_recovery_zero_durations_are_legal(self):
        # Instant failover (detection and replan in the same tick) is a
        # valid episode, distinct from "no episodes" (nan).
        assert mean_recovery_ms([0.0, 0.0]) == 0.0

    def test_availability_empty_vs_zero_is_distinct(self):
        # 0 completed of N offered is a real (terrible) availability;
        # only 0-of-0 is undefined.
        assert availability(0, 10) == 0.0
        assert math.isnan(availability(0, 0))


class TestSimulationEdgeCases:
    def _result(self, warmup_ms):
        return SimulationResult(
            system="x",
            app="y",
            duration_ms=100.0,
            requests=[RequestRecord(0.0, 50.0, 40.0)],
            power_bins_w=np.array([100.0]),
            bin_ms=100.0,
            warmup_ms=warmup_ms,
        )

    def test_mean_latency_nan_when_warmup_excludes_all(self):
        r = self._result(warmup_ms=1_000.0)
        assert r.latencies_ms() == []
        assert math.isnan(r.mean_latency_ms)

    def test_avg_power_nan_when_warmup_excludes_all_bins(self):
        r = self._result(warmup_ms=1_000.0)
        assert math.isnan(r.avg_power_w)

    def test_normal_window_unaffected(self):
        r = self._result(warmup_ms=0.0)
        assert r.mean_latency_ms == pytest.approx(50.0)
        assert r.avg_power_w == pytest.approx(100.0)

    def test_availability_excludes_dropped_and_failed(self):
        r = SimulationResult(
            system="x",
            app="y",
            duration_ms=100.0,
            requests=[
                RequestRecord(0.0, 50.0, 40.0),
                RequestRecord(1.0, 1.0, 40.0, dropped=True),
                RequestRecord(2.0, 90.0, 40.0, failed=True),
            ],
            power_bins_w=np.array([100.0]),
            bin_ms=100.0,
        )
        assert r.availability == pytest.approx(1.0 / 3.0)
        assert r.latencies_ms() == [50.0]


def _fault_lint_ctx():
    spaces = {
        ("K", AMD_W9100.name): synthetic_space(
            "K", AMD_W9100.name, DeviceType.GPU, [(10.0, 50.0)]
        ),
        ("K", XILINX_7V3.name): synthetic_space(
            "K", XILINX_7V3.name, DeviceType.FPGA, [(20.0, 20.0)]
        ),
        ("F", XILINX_7V3.name): synthetic_space(
            "F", XILINX_7V3.name, DeviceType.FPGA, [(15.0, 20.0)]
        ),
    }
    devices = (
        DeviceSlot("gpu0", AMD_W9100.name, DeviceType.GPU),
        DeviceSlot("fpga0", XILINX_7V3.name, DeviceType.FPGA),
        DeviceSlot("fpga1", XILINX_7V3.name, DeviceType.FPGA),
    )
    return LintContext(design_spaces=spaces, devices=devices, qos_ms=200.0)


class TestFaultLintRules:
    def test_rt004_fires_when_only_family_wiped(self):
        ctx = _fault_lint_ctx()
        sched = FaultSchedule(
            (
                FaultEvent(100.0, FaultKind.DEVICE_CRASH, "fpga0"),
                FaultEvent(100.0, FaultKind.DEVICE_CRASH, "fpga1"),
            )
        )
        report = run_lint(sched, ctx)
        assert not report.ok
        assert [d.rule for d in report.errors] == ["RT004"]
        assert "'F'" in report.errors[0].message  # kernel K survives on GPU

    def test_rt004_silent_with_survivor_or_recovery(self):
        ctx = _fault_lint_ctx()
        one = FaultSchedule.single_crash("fpga0", at_ms=100.0)
        assert run_lint(one, ctx).ok
        both_but_recovering = FaultSchedule(
            (
                FaultEvent(100.0, FaultKind.DEVICE_CRASH, "fpga0"),
                FaultEvent(100.0, FaultKind.DEVICE_CRASH, "fpga1"),
                FaultEvent(500.0, FaultKind.RECOVERY, "fpga1"),
            )
        )
        assert run_lint(both_but_recovering, ctx).ok

    def test_rt005_flags_degenerate_policies(self):
        bad = RetryPolicy(
            timeout_ms=0.0, backoff_cap_ms=float("inf"), max_retries=0
        )
        report = run_lint(bad, LintContext())
        rules = [d.rule for d in report]
        assert rules.count("RT005") == 3
        assert len(report.errors) == 2 and len(report.warnings) == 1

    def test_rt005_silent_on_default(self):
        assert run_lint(RetryPolicy(), LintContext()).ok

    def test_obs001_warns_on_untraced_chaos(self):
        injector = FaultInjector(FaultSchedule.single_crash("fpga0", at_ms=1.0))
        report = run_lint(injector, LintContext())
        assert report.ok  # a warning, not an error
        diags = report.by_rule("OBS001")
        assert len(diags) == 1
        assert "tracer is disabled" in diags[0].message

    def test_obs001_silent_with_tracer_or_empty_schedule(self):
        from repro.obs import SpanTracer

        traced = FaultInjector(
            FaultSchedule.single_crash("fpga0", at_ms=1.0),
            tracer=SpanTracer(),
        )
        assert not run_lint(traced, LintContext()).by_rule("OBS001")
        no_faults = FaultInjector(FaultSchedule(()))
        assert not run_lint(no_faults, LintContext()).by_rule("OBS001")


class TestFaultsExperiment:
    def test_sweep_smoke(self, heter_setup):
        from repro.experiments import faults as faults_exp

        data = faults_exp.run(
            mtbf_grid_ms=(5_000.0,), rps=20.0, duration_ms=4_000.0
        )
        rows = data["ASR"]
        assert len(rows) == 2  # baseline + one MTBF point
        assert math.isinf(rows[0]["mtbf_ms"])
        assert rows[0]["availability"] == pytest.approx(1.0)
        assert 0.0 <= rows[1]["availability"] <= 1.0
        text = faults_exp.render(data)
        assert "MTBF" in text and "avail" in text
