"""Fleet-scale observability pipeline: native engine tracing, trace
sampling, the windowed time-series/SLO layer, and the OBS002 lint gate.

Contracts under test:

* **Native tracing stays on the fast path** — an enabled tracer no
  longer delegates the event engine to the per-arrival loop, and the
  traced cluster replay (``trace_nodes=True``) is byte-identical
  between engines.
* **Sampling is a pure post-hoc pass** — head/tail decisions consume
  zero simulation RNG, so sampled and unsampled runs are
  float-identical; decisions are deterministic in (seed, req).
* **Rollups and burn rates are pure functions of the observations** —
  same stream, same windows, same alerts, every run.
"""

import json

import numpy as np
import pytest

from repro import apps as apps_mod
from repro import runtime
from repro.cluster import AutoscalerConfig, ClusterSimulation
from repro.faults import FaultInjector, FaultSchedule
from repro.lint import LintContext, Severity, run_lint
from repro.lint.runtime_rules import OBS002_FLEET_NODES
from repro.obs import (
    SLO,
    AlertEvent,
    MetricsRegistry,
    SamplingPolicy,
    SpanTracer,
    TimeSeriesStore,
    default_slos,
    evaluate_slos,
    feed_simulation_result,
    head_keep,
    render_slo_json,
    sample_events,
)
from repro.runtime import EventHeapEngine, poisson_arrivals, run_simulation
from repro.runtime.loadgen import flash_crowd_arrivals
from repro.runtime.node import LeafNode


@pytest.fixture(scope="module")
def asr():
    app = apps_mod.build("ASR")
    system = runtime.setting("I", "Heter-Poly")
    return app, system, app.explore(system.platforms)


def _arrivals(rps=40.0, duration_ms=3_000.0, seed=3):
    return poisson_arrivals(rps, duration_ms, rng=np.random.default_rng(seed))


def _traced_run(asr, arrivals, seed=3, engine="event", tracer=None):
    app, system, spaces = asr
    tracer = tracer if tracer is not None else SpanTracer()
    result = run_simulation(
        system, app, spaces, arrivals, seed=seed, engine=engine,
        tracer=tracer,
    )
    return result, tracer


# ---------------------------------------------------------------------------
# satellite: tracing must not push the engine off the fast path
# ---------------------------------------------------------------------------


class TestTracedEngineNotDelegated:
    def test_enabled_tracer_keeps_native_loop(self, asr):
        """Regression for the PR-7 predicate: an enabled tracer used to
        force per-arrival delegation; native emission must keep the
        event engine on its compiled fast path."""
        app, system, spaces = asr
        node = LeafNode(system, app, spaces, seed=3, tracer=SpanTracer())
        engine = EventHeapEngine(node)
        assert node.tracer.enabled
        assert engine.delegated is False

    def test_injector_still_delegates(self, asr):
        app, system, spaces = asr
        node = LeafNode(system, app, spaces, seed=3, tracer=SpanTracer())
        injector = FaultInjector(
            FaultSchedule.single_crash(
                "fpga0", at_ms=500.0, recover_at_ms=900.0
            )
        )
        injector.bind(node)
        assert EventHeapEngine(node).delegated is True

    def test_traced_event_run_emits_native_stream(self, asr):
        result, tracer = _traced_run(asr, _arrivals())
        assert len(tracer.events) > 0
        kinds = {e.kind for e in tracer.events}
        assert {"request.admit", "kernel.dispatch", "request.complete"} <= kinds


# ---------------------------------------------------------------------------
# tentpole 1: cluster traced A/B byte-identity
# ---------------------------------------------------------------------------


class TestClusterTracedIdentity:
    def _replay(self, asr, engine):
        app, system, spaces = asr
        tracer = SpanTracer()
        sim = ClusterSimulation(
            system, app, spaces,
            config=AutoscalerConfig(min_nodes=1, max_nodes=4),
            seed=5, tracer=tracer, engine=engine, trace_nodes=True,
        )
        arrivals = flash_crowd_arrivals(
            80.0, 16_000.0, 6_000.0, 3_000.0,
            rng=np.random.default_rng(0),
        )
        result = sim.run(arrivals, horizon_ms=16_000.0)
        return result, tracer

    def test_fleet_stream_byte_identical(self, asr):
        (rl, tl) = self._replay(asr, "legacy")
        (re_, te) = self._replay(asr, "event")
        assert rl.latencies_ms() == re_.latencies_ms()
        a = [e.to_dict() for e in tl.events]
        b = [e.to_dict() for e in te.events]
        assert len(a) > 0
        assert a == b


# ---------------------------------------------------------------------------
# tentpole 2: deterministic sampling, zero sim-RNG impact
# ---------------------------------------------------------------------------


class TestSampling:
    def test_head_keep_edge_rates(self):
        assert not any(head_keep(0, r, 0.0) for r in range(50))
        assert all(head_keep(0, r, 1.0) for r in range(50))

    def test_head_keep_deterministic_and_seed_sensitive(self):
        picks = [head_keep(7, r, 0.3) for r in range(200)]
        assert picks == [head_keep(7, r, 0.3) for r in range(200)]
        assert picks != [head_keep(8, r, 0.3) for r in range(200)]
        assert 20 < sum(picks) < 100  # ~60 expected

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SamplingPolicy(head_rate=1.5)
        with pytest.raises(ValueError):
            SamplingPolicy(head_rate=-0.1)
        with pytest.raises(ValueError):
            SamplingPolicy(tail_top_k=-1)

    def test_sampled_run_float_identical(self, asr):
        """Sampling is post-hoc: the simulated results with and without
        a sampling pass must match to the last float."""
        arrivals = _arrivals()
        plain, _ = _traced_run(asr, arrivals)
        sampled_result, tracer = _traced_run(asr, arrivals)
        sample_events(
            tracer.events,
            SamplingPolicy(head_rate=0.1, seed=1, tail_qos_ms=300.0),
        )
        assert np.array_equal(
            np.asarray(plain.latencies_ms()),
            np.asarray(sampled_result.latencies_ms()),
            equal_nan=True,
        )

    def test_decisions_deterministic_and_counters(self, asr):
        _, tracer = _traced_run(asr, _arrivals())
        policy = SamplingPolicy(head_rate=0.2, seed=9, tail_qos_ms=300.0)
        registry = MetricsRegistry()
        first = sample_events(tracer.events, policy, registry=registry)
        second = sample_events(tracer.events, policy)
        assert [e.seq for e in first.events] == [e.seq for e in second.events]
        assert first.kept_requests == second.kept_requests
        total = len(tracer.events)
        assert 0 < len(first.events) < total
        assert first.dropped_spans == total - len(first.events)
        assert registry.value("dropped_spans_total") == first.dropped_spans
        family = registry.snapshot()["sampled_requests_total"]["series"]
        decisions = sum(family.values())
        assert decisions == len(first.kept_requests) + first.dropped_requests
        labels = {ls.split('"')[1] for ls in family}
        assert labels <= {"head", "tail_qos", "tail_fault", "tail_topk", "drop"}

    def test_kept_events_preserve_order_and_lifecycle(self, asr):
        _, tracer = _traced_run(asr, _arrivals())
        sampled = sample_events(
            tracer.events, SamplingPolicy(head_rate=0.15, seed=2)
        )
        seqs = [e.seq for e in sampled.events]
        assert seqs == sorted(seqs)
        kept = set(sampled.kept_requests)
        for e in sampled.events:
            if e.kind in ("request.admit", "request.complete"):
                assert e.args["req"] in kept
        # every kept request keeps its complete span
        admits = {
            e.args["req"] for e in sampled.events
            if e.kind == "request.admit"
        }
        assert admits == kept

    def test_tail_topk_keeps_slowest(self, asr):
        _, tracer = _traced_run(asr, _arrivals())
        latency = {
            e.args["req"]: e.args["latency_ms"]
            for e in tracer.events
            if e.kind == "request.complete"
        }
        k = 5
        policy = SamplingPolicy(head_rate=0.0, seed=0, tail_top_k=k)
        sampled = sample_events(tracer.events, policy)
        ranked = sorted(latency.items(), key=lambda kv: (-kv[1], kv[0]))
        expected = {rq for rq, _ in ranked[:k]}
        kept_topk = {
            rq for rq, why in sampled.kept_requests.items()
            if why == "tail_topk"
        }
        assert kept_topk == expected


# ---------------------------------------------------------------------------
# tentpole 3: time-series rollups and SLO burn-rate alerting
# ---------------------------------------------------------------------------


class TestTimeSeries:
    def test_rollup_percentiles(self):
        store = TimeSeriesStore(window_ms=100.0)
        for i in range(100):
            store.observe("latency_ms", 50.0, float(i + 1))
        (w,) = store.rollup("latency_ms")
        assert w.count == 100
        assert w.p50 == pytest.approx(50.5)
        assert w.p99 == pytest.approx(99.01)
        assert w.minimum == 1.0 and w.maximum == 100.0

    def test_windows_partition_time(self):
        store = TimeSeriesStore(window_ms=1000.0)
        store.observe("latency_ms", 250.0, 1.0)
        store.observe("latency_ms", 1250.0, 3.0)
        store.observe("latency_ms", 2750.0, 5.0)
        ws = store.rollup("latency_ms")
        assert [(w.start_ms, w.end_ms) for w in ws] == [
            (0.0, 1000.0), (1000.0, 2000.0), (2000.0, 3000.0)
        ]
        assert store.span_ms == 3000.0

    def test_rejects_bad_input(self):
        store = TimeSeriesStore()
        with pytest.raises(ValueError):
            store.observe("latency_ms", -1.0, 1.0)
        with pytest.raises(ValueError):
            store.observe("latency_ms", 0.0, float("nan"))
        with pytest.raises(ValueError):
            TimeSeriesStore(window_ms=0.0)

    def test_feed_simulation_result(self, asr):
        app, system, spaces = asr
        result = run_simulation(
            system, app, spaces, _arrivals(), seed=3, engine="event"
        )
        store = TimeSeriesStore(window_ms=500.0)
        feed_simulation_result(store, result, qos_ms=app.qos_ms)
        assert "latency_ms" in store.series_names()
        assert "qos_attained" in store.series_names()
        assert "queue_depth" in store.series_names()
        total = sum(w.count for w in store.rollup("latency_ms"))
        served = sum(1 for r in result.requests if r.served)
        assert total == served

    def test_prometheus_rendering(self):
        store = TimeSeriesStore(window_ms=1000.0)
        store.observe("power_w", 10.0, 42.0)
        text = store.render_prometheus()
        assert 'timeseries_count{series="power_w",window_start_ms="0"} 1' in text
        assert text.endswith("\n")

    def test_snapshot_deterministic(self):
        def build():
            s = TimeSeriesStore(window_ms=250.0)
            for i in range(20):
                s.observe("latency_ms", i * 40.0, float(i))
            return s.to_json()

        assert build() == build()


class TestSLO:
    def _store(self, bad_frac, window_ms=1000.0, n_windows=12, per=50):
        """qos_attained stream with a fixed bad fraction per window."""
        store = TimeSeriesStore(window_ms=window_ms)
        bad_per = int(per * bad_frac)
        for w in range(n_windows):
            for i in range(per):
                t = w * window_ms + (i + 0.5) * window_ms / per
                store.observe("qos_attained", t, 0.0 if i < bad_per else 1.0)
        return store

    def _slo(self, **kw):
        defaults = dict(
            name="qos", series="qos_attained", objective=0.95,
            fast_window_ms=2000.0, slow_window_ms=8000.0,
            fast_burn=4.0, slow_burn=2.0,
        )
        defaults.update(kw)
        return SLO(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._slo(objective=1.0)
        with pytest.raises(ValueError):
            self._slo(fast_window_ms=9000.0)  # fast > slow
        with pytest.raises(ValueError):
            self._slo(fast_burn=0.0)

    def test_healthy_stream_no_alerts(self):
        store = self._store(bad_frac=0.0)
        assert evaluate_slos(store, [self._slo()]) == []

    def test_sustained_burn_fires_and_coalesces(self):
        # 40% bad vs a 5% budget: burn rate 8x in every window, well
        # past both gates -> exactly one coalesced alert.
        store = self._store(bad_frac=0.4)
        alerts = evaluate_slos(store, [self._slo()])
        assert len(alerts) == 1
        alert = alerts[0]
        assert isinstance(alert, AlertEvent)
        assert alert.slo == "qos"
        assert alert.burn_fast == pytest.approx(8.0)
        assert alert.end_ms > alert.t_ms

    def test_alert_emits_trace_event_and_metrics(self):
        store = self._store(bad_frac=0.4)
        tracer = SpanTracer()
        registry = MetricsRegistry()
        alerts = evaluate_slos(
            store, [self._slo()], tracer=tracer, registry=registry
        )
        emitted = [e for e in tracer.events if e.kind == "slo.alert"]
        assert len(emitted) == len(alerts) == 1
        assert emitted[0].args["slo"] == "qos"
        assert registry.value("slo_alerts_total", slo="qos") == 1

    def test_threshold_slo_on_latency(self):
        store = TimeSeriesStore(window_ms=1000.0)
        for w in range(8):
            for i in range(20):
                store.observe(
                    "latency_ms", w * 1000.0 + i * 50.0 + 1.0, 500.0
                )
        slo = SLO(
            name="p99", series="latency_ms", objective=0.99,
            threshold=300.0, fast_window_ms=2000.0,
            slow_window_ms=4000.0, fast_burn=2.0, slow_burn=2.0,
        )
        alerts = evaluate_slos(store, [slo])
        assert len(alerts) == 1  # every sample violates -> one long alert

    def test_default_slos_shape(self):
        slos = default_slos(qos_ms=300.0, window_ms=1000.0)
        assert [s.name for s in slos] == ["qos-attainment", "p99-latency"]
        assert slos[1].threshold == 300.0

    def test_render_slo_json_deterministic(self):
        store = self._store(bad_frac=0.4)
        slos = [self._slo()]
        alerts = evaluate_slos(store, slos)
        a = render_slo_json(store, slos, alerts)
        b = render_slo_json(store, slos, evaluate_slos(store, slos))
        assert a == b
        doc = json.loads(a)
        assert doc["alerts"][0]["slo"] == "qos"


# ---------------------------------------------------------------------------
# satellite: OBS002 lint gate
# ---------------------------------------------------------------------------


class TestObs002Lint:
    def _sim(self, asr, max_nodes=4, tracer=None, sampler=None,
             trace_nodes=False):
        app, system, spaces = asr
        return ClusterSimulation(
            system, app, spaces,
            config=AutoscalerConfig(min_nodes=1, max_nodes=max_nodes),
            seed=0, tracer=tracer, sampler=sampler, trace_nodes=trace_nodes,
        )

    def _diags(self, sim):
        report = run_lint(sim, LintContext())
        return [d for d in report.diagnostics if d.rule == "OBS002"]

    def test_fires_on_traced_unsampled_fleet(self, asr):
        diags = self._diags(self._sim(asr, tracer=SpanTracer()))
        assert len(diags) == 1
        assert diags[0].severity is Severity.WARNING

    def test_message_mentions_node_spans_when_trace_nodes(self, asr):
        diags = self._diags(
            self._sim(asr, tracer=SpanTracer(), trace_nodes=True)
        )
        assert "trace_nodes" in diags[0].message

    def test_sampler_suppresses(self, asr):
        sim = self._sim(
            asr, tracer=SpanTracer(),
            sampler=SamplingPolicy(head_rate=0.1, tail_qos_ms=300.0),
        )
        assert self._diags(sim) == []

    def test_small_fleet_suppresses(self, asr):
        sim = self._sim(
            asr, max_nodes=OBS002_FLEET_NODES - 1, tracer=SpanTracer()
        )
        assert self._diags(sim) == []

    def test_untraced_suppresses(self, asr):
        assert self._diags(self._sim(asr)) == []

    def test_warning_does_not_fail_gate(self, asr):
        report = run_lint(self._sim(asr, tracer=SpanTracer()), LintContext())
        assert report.ok


# ---------------------------------------------------------------------------
# satellite: Prometheus exposition edge cases
# ---------------------------------------------------------------------------


class TestPrometheusEdgeCases:
    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("odd_labels_total", path='a\\b"c\nd').inc()
        text = registry.render_prometheus()
        assert 'path="a\\\\b\\"c\\nd"' in text
        # round-trips: one physical line per sample
        sample_lines = [
            ln for ln in text.splitlines() if not ln.startswith("#")
        ]
        assert len(sample_lines) == 1

    def test_histogram_inf_bucket_and_counts(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat_ms", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        text = registry.render_prometheus()
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="10"} 2' in text
        assert 'lat_ms_bucket{le="+Inf"} 3' in text
        assert "lat_ms_count 3" in text

    def test_empty_registry_renders(self):
        assert MetricsRegistry().render_prometheus() == "\n"

    def test_escaped_labels_not_in_json_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("odd_labels_total", path="a\\b").inc()
        snap = registry.snapshot()
        assert 'path="a\\b"' in snap["odd_labels_total"]["series"]
