"""Tests for the experiment harness and the cheap figure regenerators.

The expensive sweeps (fig07-10, 12-14) are exercised by the benchmark
suite; here we test the harness utilities and the figures that run in
milliseconds, plus the summary arithmetic on synthetic data.
"""

import pytest

from repro.experiments import fig08, fig10, fig11, harness
from repro.experiments.fig09 import normalized_gap


class TestHarness:
    def test_render_table_alignment(self):
        out = harness.render_table(
            ("a", "long-header"), [("x", 1), ("longer", 22)], "title"
        )
        lines = out.splitlines()
        assert lines[0] == "title"
        assert "long-header" in lines[1]
        assert len(lines) == 5

    def test_geomean(self):
        assert harness.geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert harness.geomean([]) == 0.0
        assert harness.geomean([0.0, 2.0]) == 2.0  # zeros skipped

    def test_get_app_cached(self):
        assert harness.get_app("ASR") is harness.get_app("ASR")

    def test_systems_returns_all_three(self):
        archs = harness.systems("I")
        assert set(archs) == set(harness.SYSTEM_NAMES)

    def test_default_loads_cover_paper_range(self):
        assert harness.DEFAULT_LOADS[0] == pytest.approx(0.1)
        assert harness.DEFAULT_LOADS[-1] == pytest.approx(1.0)


class TestFig08Summary:
    def test_improvement_summary(self):
        data = {
            "Homo-GPU": {"A": 0.5, "avg": 0.5, "geomean": 0.5},
            "Homo-FPGA": {"A": 0.6, "avg": 0.6, "geomean": 0.6},
            "Heter-Poly": {"A": 0.9, "avg": 0.9, "geomean": 0.9},
        }
        imp = fig08.improvement_summary(data)
        assert imp["vs_homo_gpu"] == pytest.approx(0.8)
        assert imp["vs_homo_fpga"] == pytest.approx(0.5)

    def test_render_includes_summary_columns(self):
        data = {
            name: {"ASR": v, "avg": v, "geomean": v}
            for name, v in (
                ("Homo-GPU", 0.5),
                ("Homo-FPGA", 0.6),
                ("Heter-Poly", 0.9),
            )
        }
        out = fig08.render(data)
        assert "geomean" in out and "+" in out


class TestFig09Gap:
    def test_ideal_curve_has_zero_gap(self):
        curve = [(0.0, 0.0), (0.5, 100.0), (1.0, 200.0)]
        assert normalized_gap(curve) == pytest.approx(0.0)

    def test_flat_curve_has_positive_gap(self):
        curve = [(0.0, 200.0), (0.5, 200.0), (1.0, 200.0)]
        assert normalized_gap(curve) > 0.3

    def test_gap_robust_to_saturation_dip(self):
        # Power dipping at full load must not produce a negative gap for
        # a curve far above proportionality.
        curve = [(0.1, 150.0), (0.4, 190.0), (1.0, 160.0)]
        assert normalized_gap(curve) > 0.0


class TestFig10Summary:
    def test_improvement_summary(self):
        data = {
            "Homo-GPU": {"A": 0.3, "avg": 0.3},
            "Homo-FPGA": {"A": 0.4, "avg": 0.4},
            "Heter-Poly": {"A": 0.7, "avg": 0.7},
        }
        imp = fig10.improvement_summary(data)
        assert imp["vs_homo_gpu"] == pytest.approx(0.4)
        assert imp["vs_homo_fpga"] == pytest.approx(0.3)


class TestFig11:
    def test_run_and_render(self):
        data = fig11.run()
        assert len(data["series"]) == 288
        assert 0.0 <= data["min"] <= data["mean"] <= data["max"] <= 1.0
        out = fig11.render(data)
        assert "utilization" in out
        assert out.count("\n") > 24  # the hourly profile rows

    def test_custom_horizon(self):
        data = fig11.run(hours=2.0, interval_s=600.0)
        assert len(data["series"]) == 12
