"""Unit tests for knobs, local/global optimization, DSE and Pareto."""

import pytest

from conftest import small_kernel, synthetic_space
from repro.hardware import AMD_W9100, XILINX_7V3
from repro.hardware.specs import DeviceType
from repro.optim import (
    GlobalOptimizer,
    LocalOptimizer,
    applicable_knobs,
    dominated_fraction,
    enumerate_configs,
    explore_kernel,
    hypervolume_2d,
    knob_candidates,
    pareto_front,
)
from repro.patterns import Gather, Kernel, Map, PatternKind, PPG, Tensor


class TestKnobs:
    def test_freq_scale_always_applicable(self):
        for dt in DeviceType:
            assert "freq_scale" in applicable_knobs([PatternKind.MAP], dt)

    def test_gpu_map_knobs_match_table1(self):
        knobs = applicable_knobs([PatternKind.MAP], DeviceType.GPU)
        assert {"work_group_size", "unroll"} <= knobs
        assert "compute_units" not in knobs  # FPGA-only knob

    def test_fpga_map_knobs_match_table1(self):
        knobs = applicable_knobs([PatternKind.MAP], DeviceType.FPGA)
        assert {"work_group_size", "compute_units", "unroll", "bram_ports"} <= knobs

    def test_gather_enables_memory_knobs(self):
        gpu = applicable_knobs([PatternKind.GATHER], DeviceType.GPU)
        assert {"use_scratchpad", "memory_coalescing"} <= gpu
        fpga = applicable_knobs([PatternKind.GATHER], DeviceType.FPGA)
        assert "double_buffer" in fpga

    def test_candidates_only_for_active_knobs(self):
        cands = knob_candidates([PatternKind.PIPELINE], DeviceType.GPU)
        assert set(cands) == {"pipelined", "freq_scale"}

    def test_union_across_kinds(self):
        cands = knob_candidates(
            [PatternKind.MAP, PatternKind.GATHER], DeviceType.GPU
        )
        assert "memory_coalescing" in cands and "unroll" in cands


class TestLocalOptimizer:
    def test_parallelism_prunes_unroll(self):
        tiny = small_kernel("t", elements=2, ops=1.0)
        plan = LocalOptimizer(DeviceType.FPGA).plan(tiny)
        assert max(plan.candidates.get("unroll", (1,))) <= 2

    def test_forced_coalescing_for_gather(self):
        x = Tensor("x", (4096,))
        ppg = PPG("g")
        g = ppg.add_pattern(Gather((x,)))
        m = ppg.add_pattern(Map((x,)))
        ppg.connect(g, m)
        k = Kernel("g", ppg)
        plan = LocalOptimizer(DeviceType.GPU).plan(k)
        assert plan.forced.get("memory_coalescing") is True
        assert "memory_coalescing" not in plan.candidates

    def test_gather_marked_pending(self):
        x = Tensor("x", (4096,))
        ppg = PPG("g")
        g = ppg.add_pattern(Gather((x,)))
        k = Kernel("g", ppg)
        plan = LocalOptimizer(DeviceType.GPU).plan(k)
        assert g in plan.pending

    def test_space_size_counts_combinations(self):
        k = small_kernel("s", elements=1 << 12, ops=8.0)
        plan = LocalOptimizer(DeviceType.GPU).plan(k)
        expected = 1
        for values in plan.candidates.values():
            expected *= len(values)
        assert plan.space_size == expected


class TestGlobalOptimizer:
    def test_fusion_within_capacity(self):
        x = Tensor("x", (1024,))  # 4 KB intermediate, fits on chip
        ppg = PPG("f")
        a = ppg.add_pattern(Map((x,)))
        b = ppg.add_pattern(Map((x,)))
        ppg.connect(a, b)
        k = Kernel("f", ppg)
        plan = GlobalOptimizer(XILINX_7V3).plan(k)
        assert plan.fusions
        assert plan.fused_bytes == k.intermediate_bytes
        assert plan.fusion_fraction == pytest.approx(1.0)

    def test_oversized_intermediate_not_fused(self):
        x = Tensor("x", (1 << 24,))  # 64 MB intermediate
        ppg = PPG("f")
        a = ppg.add_pattern(Map((x,)))
        b = ppg.add_pattern(Map((x,)))
        ppg.connect(a, b)
        plan = GlobalOptimizer(XILINX_7V3).plan(Kernel("f", ppg))
        assert not plan.fusions
        assert not plan.worthwhile

    def test_budget_spent_greedily(self):
        cap = GlobalOptimizer(XILINX_7V3).onchip_capacity_bytes
        x = Tensor("x", (cap // 8,), "fp32")  # each edge = cap/2 bytes
        ppg = PPG("f")
        a, b, c = (ppg.add_pattern(Map((x,))) for _ in range(3))
        ppg.connect(a, b)
        ppg.connect(b, c)
        plan = GlobalOptimizer(XILINX_7V3).plan(Kernel("f", ppg))
        assert len(plan.fusions) == 2  # both fit within the budget


class TestDSE:
    def test_enumerate_includes_forced_values(self):
        x = Tensor("x", (4096,))
        ppg = PPG("g")
        g = ppg.add_pattern(Gather((x,)))
        m = ppg.add_pattern(Map((x,)))
        ppg.connect(g, m)
        k = Kernel("g", ppg)
        configs = enumerate_configs(k, AMD_W9100)
        assert configs
        assert all(c.memory_coalescing for c in configs)

    def test_explore_respects_target(self):
        k = small_kernel("d", elements=1 << 14, ops=16.0)
        space = explore_kernel(k, AMD_W9100, target_points=16)
        assert len(space) <= 16

    def test_points_indexed_and_sorted(self, explored_small_spaces):
        k, spaces = explored_small_spaces
        space = spaces[(k.name, AMD_W9100.name)]
        lats = [p.latency_ms for p in space]
        assert lats == sorted(lats)
        assert [p.index for p in space] == list(range(len(space)))

    def test_fpga_points_all_feasible(self, explored_small_spaces):
        from repro.hardware import FPGAModel

        k, spaces = explored_small_spaces
        model = FPGAModel(XILINX_7V3)
        for p in spaces[(k.name, XILINX_7V3.name)]:
            assert model.feasible(k, p.config)

    def test_selection_helpers(self, explored_small_spaces):
        k, spaces = explored_small_spaces
        space = spaces[(k.name, AMD_W9100.name)]
        assert space.min_latency().latency_ms == min(p.latency_ms for p in space)
        assert space.min_power().power_w == min(p.power_w for p in space)
        best_eff = max(p.energy_efficiency for p in space)
        assert space.max_efficiency().energy_efficiency == best_eff

    def test_within_latency_filter(self, explored_small_spaces):
        k, spaces = explored_small_spaces
        space = spaces[(k.name, AMD_W9100.name)]
        cut = space.min_latency().latency_ms * 1.1
        subset = space.within_latency(cut)
        assert subset and all(p.latency_ms <= cut for p in subset)


class TestPareto:
    def test_frontier_no_domination(self, explored_small_spaces):
        k, spaces = explored_small_spaces
        for space in spaces.values():
            frontier = space.pareto()
            for a in frontier:
                assert not any(b.dominates(a) for b in space if b is not a)

    def test_pareto_front_function(self):
        items = [(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0)]
        front = pareto_front(items, lambda t: t)
        assert front == [(1.0, 5.0), (2.0, 3.0), (4.0, 1.0)]

    def test_dominated_fraction(self):
        items = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]
        assert dominated_fraction(items, lambda t: t) == pytest.approx(0.75)

    def test_hypervolume_monotone_in_points(self):
        ref = (10.0, 10.0)
        small = hypervolume_2d([(5.0, 5.0)], lambda t: t, ref)
        bigger = hypervolume_2d([(5.0, 5.0), (2.0, 8.0)], lambda t: t, ref)
        assert bigger > small > 0

    def test_design_space_rejects_empty(self):
        from repro.optim import KernelDesignSpace

        with pytest.raises(ValueError, match="empty"):
            KernelDesignSpace("k", "p", DeviceType.GPU, [])

    def test_synthetic_space_pareto_shape(self):
        space = synthetic_space(
            "k", "p", DeviceType.GPU,
            [(10, 100), (20, 50), (30, 60), (40, 20)],
        )
        frontier = space.pareto()
        assert [(p.latency_ms, p.power_w) for p in frontier] == [
            (10, 100), (20, 50), (40, 20),
        ]
