"""Tests for the static diagnostics engine (repro.lint).

One positive (rule fires) and one negative (rule stays quiet) case per
rule, the engine machinery, the validate gates in the frontend / DSE /
scheduler, the CLI subcommand, and a property test that lint-clean PPGs
never raise inside DSE.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from conftest import chain_graph, small_kernel, synthetic_space
from repro import apps as apps_mod
from repro.apps.base import Application
from repro.cli import main
from repro.cluster import AutoscalerConfig
from repro.frontend import build_kernel, parse
from repro.hardware import AMD_W9100, ImplConfig
from repro.hardware.specs import DeviceType, INTEL_ARRIA10, XILINX_7V3
from repro.lint import (
    DesignCheck,
    Diagnostic,
    LintContext,
    LintError,
    Severity,
    all_rules,
    register_rule,
    rules_for,
    run_lint,
)
from repro.lint.core import _REGISTRY
from repro.optim.dse import enumerate_configs, explore_kernel, prune_invalid_configs
from repro.patterns import Kernel, Map, PPG, Reduce, Scatter, Tensor
from repro.patterns.ppg import PPGEdge
from repro.scheduler import (
    AdmissionError,
    DeviceSlot,
    KernelGraph,
    PolyScheduler,
    SchedulePlanCache,
)

EXPECTED_RULES = {
    "PPG001", "PPG002", "PPG003", "PPG004", "PPG005", "PPG006", "PPG007",
    "PPG008", "OPT001", "OPT002", "OPT003", "OPT004", "RT001", "RT002",
    "RT003", "RT007",
}


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def _producer_consumer(consumed: Tensor):
    """Reduce(x) -> Map(consumed); Reduce's output is named ``x_red``."""
    x = Tensor("x", (1024,))
    ppg = PPG("pc")
    r = ppg.add_pattern(Reduce((x,), func="add"))
    m = ppg.add_pattern(Map((consumed,), func="mul"))
    ppg.connect(r, m)
    return ppg


def _big_fp64_kernel(name="big"):
    """A kernel whose widest FPGA configs over-subscribe Arria 10 DSPs."""
    x = Tensor(f"{name}_x", (1 << 20,), "fp64")
    ppg = PPG(name)
    ppg.add_pattern(Map((x,), func="mac", ops_per_element=64.0))
    return Kernel(name, ppg)


def _bad_shape_kernel(name="BAD"):
    """Kernel with a shape-mismatched PPG edge (PPG001)."""
    return Kernel(name, _producer_consumer(Tensor("x_red", (512,))))


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class TestEngine:
    def test_all_rules_registered(self):
        ids = {r.rule_id for r in all_rules()}
        assert EXPECTED_RULES <= ids
        assert all(r.description for r in all_rules())

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_rule("PPG001", Severity.ERROR, (PPG,))(lambda o, c: [])

    def test_rules_for_dispatches_on_type(self):
        ppg_rules = {r.rule_id for r in rules_for(PPG("p"))}
        assert "PPG001" in ppg_rules and "RT001" not in ppg_rules
        graph_rules = {r.rule_id for r in rules_for(KernelGraph("g"))}
        assert "RT001" in graph_rules and "PPG001" not in graph_rules

    def test_diagnostic_render_and_dict(self):
        d = Diagnostic("PPG001", Severity.ERROR, "k/a->b", "boom", hint="fix")
        assert "ERROR" in d.render() and "PPG001" in d.render()
        assert d.to_dict() == {
            "rule": "PPG001",
            "severity": "error",
            "location": "k/a->b",
            "message": "boom",
            "hint": "fix",
        }

    def test_report_json_round_trips(self):
        report = run_lint(_bad_shape_kernel())
        data = json.loads(report.to_json())
        assert data["ok"] is False
        assert data["errors"] == len(report.errors) >= 1
        assert all({"rule", "severity", "location", "message"} <= set(d)
                   for d in data["diagnostics"])

    def test_rule_ids_filter(self):
        report = run_lint(_bad_shape_kernel(), rule_ids=["PPG002"])
        assert len(report) == 0

    def test_raise_if_errors(self):
        report = run_lint(_bad_shape_kernel())
        with pytest.raises(LintError, match="PPG001") as exc:
            report.raise_if_errors("test kernel")
        assert exc.value.report is report
        run_lint(small_kernel()).raise_if_errors()  # clean: no raise

    def test_crashing_rule_reported_not_raised(self):
        @register_rule("TST999", Severity.INFO, (PPG,))
        def broken(ppg, ctx):
            raise RuntimeError("kaput")

        try:
            report = run_lint(small_kernel().ppg, expand=False)
            crash = report.by_rule("LINT000")
            assert len(crash) == 1 and "TST999" in crash[0].message
        finally:
            del _REGISTRY["TST999"]


# ---------------------------------------------------------------------------
# pattern-layer rules
# ---------------------------------------------------------------------------


class TestPatternRules:
    def test_ppg001_shape_mismatch_fires(self):
        report = run_lint(_producer_consumer(Tensor("x_red", (512,))))
        assert [d.severity for d in report.by_rule("PPG001")] == [Severity.ERROR]
        assert not report.ok

    def test_ppg001_matching_shapes_clean(self):
        report = run_lint(_producer_consumer(Tensor("x_red", (1,))))
        assert not report.by_rule("PPG001") and report.ok

    def test_ppg002_dtype_mismatch_fires(self):
        report = run_lint(_producer_consumer(Tensor("x_red", (1,), "int8")))
        assert report.by_rule("PPG002") and not report.ok

    def test_ppg002_matching_dtypes_clean(self):
        report = run_lint(_producer_consumer(Tensor("x_red", (1,), "fp32")))
        assert not report.by_rule("PPG002")

    def test_ppg003_dangling_dependency_fires(self):
        # Consumer reads a tensor unrelated to the producer by name *and*
        # extent: the edge serializes the schedule for nothing.
        report = run_lint(_producer_consumer(Tensor("z", (2048,))))
        diags = report.by_rule("PPG003")
        assert diags and diags[0].severity == Severity.INFO
        assert report.ok  # informational only

    def test_ppg003_shared_stream_clean(self):
        # Consumer re-reads the producer's own input (in-place idiom used
        # by the bundled apps) — not a dangling dependency.
        report = run_lint(_producer_consumer(Tensor("x", (1024,))))
        assert not report.by_rule("PPG003")

    def test_ppg004_narrow_index_space_fires(self):
        s = Tensor("s", (1000,))
        ppg = PPG("sc")
        ppg.add_pattern(Scatter((s,), index_space=10))
        report = run_lint(ppg, expand=False)
        diags = report.by_rule("PPG004")
        assert diags and diags[0].severity == Severity.WARNING

    def test_ppg004_bijective_scatter_clean(self):
        s = Tensor("s", (1000,))
        ppg = PPG("sc")
        ppg.add_pattern(Scatter((s,), index_space=1000))
        assert not run_lint(ppg, expand=False).by_rule("PPG004")

    def test_ppg005_unordered_scatter_race_fires(self):
        s = Tensor("s", (64,))
        ppg = PPG("race")
        ppg.add_pattern(Scatter((s,)))
        ppg.add_pattern(Scatter((s,)))  # same output tensor 's_scat'
        report = run_lint(ppg, expand=False)
        assert report.by_rule("PPG005") and not report.ok

    def test_ppg005_ordered_scatters_clean(self):
        s = Tensor("s", (64,))
        ppg = PPG("race")
        a = ppg.add_pattern(Scatter((s,)))
        b = ppg.add_pattern(Scatter((s,)))
        ppg.connect(a, b)  # ordered by a dependency chain
        assert not run_lint(ppg, expand=False).by_rule("PPG005")

    def test_ppg006_oversized_intermediate_fires(self):
        x = Tensor("x", (64,))
        ppg = PPG("fuse")
        m1 = ppg.add_pattern(Map((x,)))
        m2 = ppg.add_pattern(Map((x,)))
        ppg.connect(m1, m2, bytes_moved=1 << 30)  # 1 GiB beats any SRAM
        diags = run_lint(ppg, expand=False).by_rule("PPG006")
        assert diags and diags[0].severity == Severity.INFO

    def test_ppg006_small_intermediate_clean(self):
        assert not run_lint(small_kernel(steps=4).ppg, expand=False).by_rule("PPG006")

    def test_ppg007_orphan_fires(self):
        x = Tensor("x", (64,))
        ppg = PPG("orph")
        m1 = ppg.add_pattern(Map((x,)))
        m2 = ppg.add_pattern(Map((x,)))
        ppg.connect(m1, m2)
        ppg.add_pattern(Map((Tensor("y", (8,)),)))  # never connected
        diags = run_lint(ppg, expand=False).by_rule("PPG007")
        assert len(diags) == 1

    def test_ppg007_single_pattern_is_not_an_orphan(self):
        assert not run_lint(small_kernel().ppg, expand=False).by_rule("PPG007")

    def test_ppg008_empty_ppg_fires(self):
        report = run_lint(PPG("empty"), expand=False)
        assert report.by_rule("PPG008") and not report.ok

    def test_ppg008_cycle_fires(self):
        x = Tensor("x", (64,))
        ppg = PPG("cyc")
        m1 = ppg.add_pattern(Map((x,)))
        m2 = ppg.add_pattern(Map((x,)))
        ppg.connect(m1, m2)
        # connect() refuses cycles; mutate the graph directly.
        ppg.graph.add_edge(m2, m1, edge=PPGEdge(m2, m1, 0))
        report = run_lint(ppg, expand=False)
        diags = report.by_rule("PPG008")
        assert diags and "cycle" in diags[0].message

    def test_ppg008_dag_clean(self):
        assert not run_lint(small_kernel(steps=4).ppg, expand=False).by_rule("PPG008")

    def test_connect_still_rejects_cycles_incrementally(self):
        x = Tensor("x", (64,))
        ppg = PPG("c")
        m1 = ppg.add_pattern(Map((x,)))
        m2 = ppg.add_pattern(Map((x,)))
        ppg.connect(m1, m2)
        with pytest.raises(ValueError, match="cycle"):
            ppg.connect(m2, m1)
        with pytest.raises(ValueError, match="cycle"):
            ppg.connect(m1, m1)  # self-loop


# ---------------------------------------------------------------------------
# optimization-layer rules
# ---------------------------------------------------------------------------


class TestOptimRules:
    def test_opt001_inapplicable_knob_fires(self):
        # Table I gives Map on GPU only work_group_size/unroll; a
        # scratchpad request is dead configuration.
        check = DesignCheck(
            small_kernel(), ImplConfig(use_scratchpad=True), AMD_W9100
        )
        report = run_lint(check)
        diags = report.by_rule("OPT001")
        assert diags and not report.ok
        assert "use_scratchpad" in diags[0].message

    def test_opt001_applicable_knob_clean(self):
        check = DesignCheck(small_kernel(), ImplConfig(unroll=4), AMD_W9100)
        assert run_lint(check).ok

    def test_opt002_fpga_oversubscription_fires(self):
        # 256 fp64 lanes need ~2048 DSPs; Arria 10 has 1518.
        check = DesignCheck(
            _big_fp64_kernel(),
            ImplConfig(unroll=32, compute_units=8),
            INTEL_ARRIA10,
        )
        report = run_lint(check)
        assert report.by_rule("OPT002") and not report.ok

    def test_opt002_modest_design_fits(self):
        check = DesignCheck(_big_fp64_kernel(), ImplConfig(), INTEL_ARRIA10)
        assert not run_lint(check).by_rule("OPT002")

    def test_opt002_ignores_gpus(self):
        check = DesignCheck(
            _big_fp64_kernel(), ImplConfig(unroll=32), AMD_W9100
        )
        assert not run_lint(check).by_rule("OPT002")

    def test_opt003_non_power_of_two_fires(self):
        check = DesignCheck(small_kernel(), ImplConfig(work_group_size=48), AMD_W9100)
        diags = run_lint(check).by_rule("OPT003")
        assert diags and diags[0].severity == Severity.WARNING

    def test_opt003_oversized_group_fires(self):
        tiny = small_kernel("tiny", elements=32)
        check = DesignCheck(tiny, ImplConfig(work_group_size=64), AMD_W9100)
        diags = run_lint(check).by_rule("OPT003")
        assert diags and "parallelism" in diags[0].message

    def test_opt003_sane_group_clean(self):
        check = DesignCheck(small_kernel(), ImplConfig(work_group_size=64), AMD_W9100)
        assert not run_lint(check).by_rule("OPT003")

    def test_opt004_explosion_fires_under_tight_budget(self):
        kernel = small_kernel("boom", elements=1 << 16, ops=16.0)
        ctx = LintContext(spec=AMD_W9100, config_budget=4)
        diags = run_lint(kernel, ctx).by_rule("OPT004")
        assert diags and diags[0].severity == Severity.WARNING
        assert "configs" in diags[0].message

    def test_opt004_count_matches_enumeration(self):
        kernel = small_kernel("boom", elements=1 << 16, ops=16.0)
        enumerated = len(enumerate_configs(kernel, AMD_W9100))
        ctx = LintContext(spec=AMD_W9100, config_budget=enumerated - 1)
        diags = run_lint(kernel, ctx).by_rule("OPT004")
        assert diags and f"enumerates {enumerated} configs" in diags[0].message
        # At exactly the enumerated count the budget is respected.
        ctx = LintContext(spec=AMD_W9100, config_budget=enumerated)
        assert not run_lint(kernel, ctx).by_rule("OPT004")

    def test_opt004_checks_every_context_spec(self):
        kernel = small_kernel("boom", elements=1 << 16, ops=16.0)
        ctx = LintContext(specs=(AMD_W9100, INTEL_ARRIA10), config_budget=1)
        locations = {d.location for d in run_lint(kernel, ctx).by_rule("OPT004")}
        assert len(locations) == 2

    def test_opt004_bundled_apps_within_default_budget(self):
        # The six Table-II apps must stay clean under the default budget;
        # if a new kernel trips this, shrink its knob lists (or raise
        # DEFAULT_CONFIG_BUDGET deliberately).
        from repro import apps as apps_mod
        from repro import runtime

        specs = tuple(runtime.setting("I", "Heter-Poly").platforms)
        for name in apps_mod.APP_BUILDERS:
            report = run_lint(apps_mod.build(name), LintContext(specs=specs))
            assert not report.by_rule("OPT004"), name


# ---------------------------------------------------------------------------
# runtime-layer rules
# ---------------------------------------------------------------------------


def _spaces_for(graph, platform, latency_ms, device_type=DeviceType.GPU):
    return {
        (name, platform): synthetic_space(
            name, platform, device_type, [(latency_ms, 50.0)]
        )
        for name in graph.kernel_names
    }


class TestRuntimeRules:
    def test_rt001_empty_graph_fires(self):
        report = run_lint(KernelGraph("empty"), expand=False)
        assert report.by_rule("RT001") and not report.ok

    def test_rt001_cycle_fires(self):
        graph = chain_graph(n=2)
        graph.graph.add_edge("K1", "K0", nbytes=0)  # bypass connect()
        diags = run_lint(graph, expand=False).by_rule("RT001")
        assert diags and "cycle" in diags[0].message

    def test_rt001_dag_clean(self):
        assert not run_lint(chain_graph(), expand=False).by_rule("RT001")

    def test_rt002_infeasible_qos_fires(self):
        graph = chain_graph(n=3)
        ctx = LintContext(
            design_spaces=_spaces_for(graph, "P", latency_ms=500.0), qos_ms=200.0
        )
        report = run_lint(graph, ctx, expand=False)
        diags = report.by_rule("RT002")
        assert diags and "lower bound" in diags[0].message and not report.ok

    def test_rt002_feasible_qos_clean(self):
        graph = chain_graph(n=3)
        ctx = LintContext(
            design_spaces=_spaces_for(graph, "P", latency_ms=10.0), qos_ms=200.0
        )
        assert not run_lint(graph, ctx, expand=False).by_rule("RT002")

    def test_rt003_missing_design_space_fires(self):
        graph = chain_graph(n=2)
        spaces = _spaces_for(graph, "P", latency_ms=10.0)
        del spaces[("K1", "P")]
        ctx = LintContext(design_spaces=spaces)
        report = run_lint(graph, ctx, expand=False)
        diags = report.by_rule("RT003")
        assert len(diags) == 1 and "K1" in diags[0].message and not report.ok

    def test_rt003_pool_platform_gap_fires(self):
        graph = chain_graph(n=2)
        ctx = LintContext(
            design_spaces=_spaces_for(graph, "P", latency_ms=10.0),
            devices=(DeviceSlot("d0", "OTHER", DeviceType.GPU),),
        )
        report = run_lint(graph, ctx, expand=False)
        assert len(report.by_rule("RT003")) == 2 and not report.ok

    def test_rt003_single_family_coverage_is_info(self):
        graph = chain_graph(n=1)
        ctx = LintContext(
            design_spaces=_spaces_for(graph, AMD_W9100.name, latency_ms=10.0),
            devices=(
                DeviceSlot("gpu0", AMD_W9100.name, DeviceType.GPU),
                DeviceSlot("fpga0", XILINX_7V3.name, DeviceType.FPGA),
            ),
        )
        report = run_lint(graph, ctx, expand=False)
        diags = report.by_rule("RT003")
        assert diags and all(d.severity == Severity.INFO for d in diags)
        assert report.ok

    def test_rt003_full_coverage_clean(self):
        graph = chain_graph(n=2)
        ctx = LintContext(
            design_spaces=_spaces_for(graph, AMD_W9100.name, latency_ms=10.0),
            devices=(DeviceSlot("gpu0", AMD_W9100.name, DeviceType.GPU),),
        )
        assert not run_lint(graph, ctx, expand=False).by_rule("RT003")


class TestPlanCacheInvalidationRule:
    def _scheduler(self, cache):
        spaces = _spaces_for(chain_graph(n=2), AMD_W9100.name, latency_ms=10.0)
        return PolyScheduler(spaces, 200.0, plan_cache=cache)

    def test_rt006_unbound_cache_warns(self):
        report = run_lint(self._scheduler(SchedulePlanCache()), LintContext())
        diags = report.by_rule("RT006")
        assert len(diags) == 1
        assert diags[0].severity == Severity.WARNING
        assert "invalidation" in diags[0].message
        assert report.ok  # a warning, not an error

    def test_rt006_bound_cache_clean(self):
        class Owner:
            pass

        owner = Owner()
        cache = SchedulePlanCache()
        cache.bind_invalidation(owner)
        report = run_lint(self._scheduler(cache), LintContext())
        assert not report.by_rule("RT006")

    def test_rt006_cacheless_scheduler_clean(self):
        report = run_lint(self._scheduler(None), LintContext())
        assert not report.by_rule("RT006")


class TestAutoscalerConfigRule:
    def test_rt007_defaults_clean(self):
        report = run_lint(AutoscalerConfig(), LintContext())
        assert not report.by_rule("RT007") and report.ok

    def test_rt007_min_above_max_fires(self):
        report = run_lint(
            AutoscalerConfig(min_nodes=5, max_nodes=2), LintContext()
        )
        diags = report.by_rule("RT007")
        assert diags and not report.ok
        assert any("min_nodes=5" in d.message for d in diags)

    def test_rt007_empty_fleet_fires(self):
        report = run_lint(AutoscalerConfig(min_nodes=0), LintContext())
        diags = report.by_rule("RT007")
        assert diags and "empty fleet" in diags[0].message

    def test_rt007_zero_eval_interval_fires(self):
        report = run_lint(
            AutoscalerConfig(eval_interval_ms=0.0), LintContext()
        )
        diags = report.by_rule("RT007")
        assert diags and "eval_interval_ms" in diags[0].message
        assert all(d.severity == Severity.ERROR for d in diags)

    def test_rt007_inverted_hysteresis_fires(self):
        report = run_lint(
            AutoscalerConfig(
                scale_up_utilization=0.3, scale_down_utilization=0.8
            ),
            LintContext(),
        )
        diags = report.by_rule("RT007")
        assert len(diags) == 1
        assert "oscillation" in diags[0].message

    def test_rt007_target_outside_band_fires(self):
        report = run_lint(
            AutoscalerConfig(target_utilization=0.95), LintContext()
        )
        diags = report.by_rule("RT007")
        assert len(diags) == 1 and "target_utilization" in diags[0].message

    def test_rt007_long_warmup_is_warning(self):
        report = run_lint(
            AutoscalerConfig(warmup_ms=20_000.0, eval_interval_ms=1000.0),
            LintContext(),
        )
        diags = report.by_rule("RT007")
        assert len(diags) == 1
        assert diags[0].severity == Severity.WARNING
        assert report.ok  # warnings do not fail the report

    def test_rt007_multiple_defects_all_reported(self):
        report = run_lint(
            AutoscalerConfig(
                min_nodes=0,
                eval_interval_ms=0.0,
                scale_up_utilization=0.2,
                scale_down_utilization=0.9,
            ),
            LintContext(),
        )
        assert len(report.by_rule("RT007")) == 3

    def test_rt007_location_prefixed(self):
        report = run_lint(
            AutoscalerConfig(min_nodes=0), LintContext()
        )
        assert "autoscaler" in report.by_rule("RT007")[0].location


# ---------------------------------------------------------------------------
# validate gates: frontend, DSE, scheduler
# ---------------------------------------------------------------------------

BAD_KERNEL_SRC = """
kernel Bad {
    tensor x (1024) fp32
    tensor x_red (512) fp32
    pattern r = reduce(x) func=add
    pattern m = map(x_red) func=mul
    dep r -> m
}
"""


class TestGates:
    def test_builder_validate_raises_on_shape_mismatch(self):
        decl = parse(BAD_KERNEL_SRC).kernels["Bad"]
        build_kernel(decl)  # no gate: builds fine
        with pytest.raises(LintError, match="PPG001"):
            build_kernel(decl, validate=True)

    def test_builder_validate_passes_clean_source(self):
        src = "kernel K {\n tensor x (4096)\n pattern m = map(x)\n}"
        k = build_kernel(parse(src).kernels["K"], validate=True)
        assert k.name == "K"

    def test_dse_validate_prunes_oversized_fpga_points(self):
        # The acceptance case: wide fp64 configs cannot place on Arria 10
        # and must be pruned before model evaluation.
        kernel = _big_fp64_kernel()
        space = explore_kernel(kernel, INTEL_ARRIA10, validate=True)
        assert space.pruned_invalid > 0
        baseline = explore_kernel(kernel, INTEL_ARRIA10)
        assert baseline.pruned_invalid == 0

    def test_prune_invalid_configs_reports_why(self):
        kernel = _big_fp64_kernel()
        configs = enumerate_configs(kernel, INTEL_ARRIA10)
        kept, report = prune_invalid_configs(kernel, INTEL_ARRIA10, configs)
        assert len(kept) < len(configs)
        assert report.by_rule("OPT002")

    def test_dse_validate_rejects_broken_kernel(self):
        with pytest.raises(LintError, match="PPG001"):
            explore_kernel(_bad_shape_kernel(), AMD_W9100, validate=True)

    def test_scheduler_admission_rejects_coverage_gap(self):
        graph = chain_graph(n=2)
        spaces = _spaces_for(graph, AMD_W9100.name, latency_ms=10.0)
        del spaces[("K1", AMD_W9100.name)]
        scheduler = PolyScheduler(spaces, latency_bound_ms=200.0)
        devices = [DeviceSlot("gpu0", AMD_W9100.name, DeviceType.GPU)]
        report = scheduler.admission_check(graph, devices)
        assert not report.ok
        with pytest.raises(AdmissionError, match="RT003") as exc:
            scheduler.schedule(graph, devices, validate=True)
        assert not exc.value.report.ok

    def test_scheduler_admission_accepts_feasible_request(
        self, explored_small_spaces, two_device_slots
    ):
        kernel, spaces = explored_small_spaces
        graph = KernelGraph("ok")
        graph.add_kernel(kernel)
        scheduler = PolyScheduler(spaces, latency_bound_ms=200.0)
        assert scheduler.admission_check(graph, two_device_slots).ok
        schedule, _ = scheduler.schedule(graph, two_device_slots, validate=True)
        assert schedule.assignments


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCLI:
    def test_lint_single_app_ok(self, capsys):
        assert main(["lint", "--app", "asr"]) == 0
        out = capsys.readouterr().out
        assert "ASR" in out and "[OK]" in out

    def test_lint_json_round_trips(self, capsys):
        assert main(["lint", "--app", "asr", "--app", "ir", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert set(data["apps"]) == {"ASR", "IR"}

    def test_lint_unknown_app_exits_2(self, capsys):
        assert main(["lint", "--app", "nope"]) == 2

    def test_lint_bad_app_exits_nonzero_with_error(self, capsys, monkeypatch):
        def build_bad():
            graph = KernelGraph("BAD")
            graph.add_kernel(_bad_shape_kernel("BAD"))
            return Application(
                name="BAD",
                full_name="Broken benchmark",
                graph=graph,
                design_targets={
                    "BAD": {DeviceType.GPU: 4, DeviceType.FPGA: 4}
                },
            )

        monkeypatch.setitem(apps_mod.APP_BUILDERS, "BAD", build_bad)
        assert main(["lint", "--app", "bad"]) == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out and "ERROR" in out and "PPG001" in out


# ---------------------------------------------------------------------------
# property: lint-clean kernels survive DSE
# ---------------------------------------------------------------------------


class TestLintCleanProperty:
    @given(
        elements=st.sampled_from([256, 1024, 4096, 16384]),
        ops=st.floats(min_value=1.0, max_value=64.0),
        steps=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=10, deadline=None)
    def test_clean_kernel_never_raises_in_dse(self, elements, ops, steps):
        kernel = small_kernel("H", elements=elements, ops=ops, steps=steps)
        assert run_lint(kernel).ok
        space = explore_kernel(kernel, AMD_W9100, target_points=16, validate=True)
        assert len(space) > 0
