"""Unit tests for the parallel-pattern annotation layer."""


import pytest

from repro.patterns import (
    Gather,
    Map,
    Pack,
    PatternKind,
    Pipeline,
    Reduce,
    Scan,
    Scatter,
    Stencil,
    Tensor,
    Tiling,
    Workload,
    make_pattern,
)


class TestTensor:
    def test_elements_and_bytes(self):
        t = Tensor("x", (4, 8, 16), "fp32")
        assert t.elements == 512
        assert t.dtype_bytes == 4
        assert t.nbytes == 2048

    def test_fp16_halves_bytes(self):
        t = Tensor("x", (128,), "fp16")
        assert t.nbytes == 256

    def test_int8(self):
        t = Tensor("x", (128,), "int8")
        assert t.nbytes == 128

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError, match="non-empty shape"):
            Tensor("x", ())

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError, match="non-positive"):
            Tensor("x", (4, 0))

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            Tensor("x", (4,), "complex128")

    def test_with_shape_derives_new_tensor(self):
        t = Tensor("x", (4, 4), "fp16", resident=True)
        out = t.with_shape((16,))
        assert out.shape == (16,)
        assert out.dtype == "fp16"
        assert not out.resident  # outputs are never parameters

    def test_resident_stationary_default(self):
        t = Tensor("w", (4,), resident=True)
        assert t.stationary


class TestPatternKind:
    def test_from_name_case_insensitive(self):
        assert PatternKind.from_name("Map") == PatternKind.MAP
        assert PatternKind.from_name(" REDUCE ") == PatternKind.REDUCE

    def test_from_name_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown parallel pattern"):
            PatternKind.from_name("fft")

    def test_nine_patterns_defined(self):
        assert len(PatternKind) == 9


class TestWorkload:
    def test_totals(self):
        wl = Workload(elements=100, ops_per_element=3.0, bytes_in=400, bytes_out=100)
        assert wl.total_ops == 300.0
        assert wl.total_bytes == 500
        assert wl.arithmetic_intensity == pytest.approx(0.6)

    def test_rejects_zero_elements(self):
        with pytest.raises(ValueError):
            Workload(elements=0, ops_per_element=1.0, bytes_in=0, bytes_out=0)

    def test_rejects_bad_regularity(self):
        with pytest.raises(ValueError):
            Workload(
                elements=1, ops_per_element=1.0, bytes_in=0, bytes_out=0,
                access_regularity=1.5,
            )

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            Workload(
                elements=1, ops_per_element=1.0, bytes_in=0, bytes_out=0,
                sequential_steps=0,
            )


class TestMap:
    def test_workload_matches_tensor(self):
        x = Tensor("x", (1024,))
        m = Map((x,), func="mul", ops_per_element=2.0)
        wl = m.workload
        assert wl.elements == 1024
        assert wl.total_ops == 2048
        assert wl.bytes_in == 4096

    def test_parallelism_is_elementwise(self):
        x = Tensor("x", (256,))
        m = Map((x,), ops_per_element=1.0)
        assert m.data_parallelism == 256
        assert m.compute_parallelism == 256

    def test_unique_uids(self):
        x = Tensor("x", (4,))
        a, b = Map((x,)), Map((x,))
        assert a.uid != b.uid
        assert a != b

    def test_requires_input(self):
        with pytest.raises(ValueError):
            Map(())


class TestReduce:
    def test_output_is_scalar(self):
        x = Tensor("x", (1024,))
        r = Reduce((x,), func="add")
        assert r.output.elements == 1

    def test_tree_parallelism(self):
        x = Tensor("x", (1024,))
        r = Reduce((x,))
        assert r.compute_parallelism == 512


class TestScan:
    def test_output_shape_preserved(self):
        x = Tensor("x", (128,))
        s = Scan((x,), func="add")
        assert s.output.elements == 128

    def test_per_sweep_parallelism(self):
        x = Tensor("x", (128,))
        assert Scan((x,)).compute_parallelism == 64


class TestStencil:
    def test_taps_scale_work_and_traffic(self):
        x = Tensor("x", (64, 64))
        s1 = Stencil((x,), ops_per_element=1.0, neighborhood=((0, 0),))
        s9 = Stencil(
            (x,),
            ops_per_element=1.0,
            neighborhood=tuple((i, j) for i in (-1, 0, 1) for j in (-1, 0, 1)),
        )
        assert s9.workload.total_ops == 9 * s1.workload.total_ops
        assert s9.workload.bytes_in == 9 * s1.workload.bytes_in

    def test_requires_neighborhood(self):
        with pytest.raises(ValueError):
            Stencil((Tensor("x", (4,)),), neighborhood=())

    def test_reduced_regularity(self):
        s = Stencil((Tensor("x", (4,)),))
        assert s.workload.access_regularity < 1.0


class TestPipeline:
    def test_depth_and_ops(self):
        x = Tensor("x", (100,))
        p = Pipeline((x,), stages=("a", "b", "c"), ops_per_stage=2.0)
        assert p.depth == 3
        assert p.workload.total_ops == 600

    def test_iterations_become_sequential_steps(self):
        x = Tensor("x", (100,))
        p = Pipeline((x,), stages=("a",), iterations=50)
        assert p.workload.sequential_steps == 50

    def test_rejects_empty_stages(self):
        with pytest.raises(ValueError):
            Pipeline((Tensor("x", (4,)),), stages=())

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            Pipeline((Tensor("x", (4,)),), iterations=0)

    def test_func_concatenates_stages(self):
        p = Pipeline((Tensor("x", (4,)),), stages=("exp", "log"))
        assert p.func == "exp+log"


class TestGatherScatter:
    def test_gather_output_size_from_index_space(self):
        x = Tensor("x", (1 << 16,))
        g = Gather((x,), index_space=1000)
        assert g.output.elements == 1000

    def test_gather_defaults_to_input_size(self):
        x = Tensor("x", (64,))
        assert Gather((x,)).output.elements == 64

    def test_irregular_access(self):
        x = Tensor("x", (64,))
        assert Gather((x,)).workload.access_regularity < 0.5
        assert Scatter((x,)).workload.access_regularity < 0.5


class TestTiling:
    def test_tiles_and_elements(self):
        x = Tensor("x", (64, 64))
        t = Tiling((x,), tile=(16, 16), grid=(4, 4))
        assert t.tiles == 16
        assert t.tile_elements == 256
        assert t.compute_parallelism == 16

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same rank"):
            Tiling((Tensor("x", (4,)),), tile=(2,), grid=(2, 2))

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValueError):
            Tiling((Tensor("x", (4,)),), tile=(0,), grid=(1,))


class TestPack:
    def test_minimum_op_cost(self):
        p = Pack((Tensor("x", (128,)),), ops_per_element=0.0)
        assert p.workload.ops_per_element >= 0.25


class TestFactory:
    @pytest.mark.parametrize("kind", list(PatternKind))
    def test_make_pattern_covers_all_kinds(self, kind):
        p = make_pattern(kind, [Tensor("x", (16,))])
        assert p.kind == kind
