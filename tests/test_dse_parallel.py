"""Parallel DSE parity, subsample determinism, incremental Pareto."""

import random

import pytest

from conftest import small_kernel
from repro import apps, runtime
from repro.hardware import AMD_W9100
from repro.optim import ParetoFrontier, explore_kernel, pareto_front
from repro.optim.dse import _point_order_key, _subsample, resolve_n_jobs


def _point_tuple(p):
    return (p.kernel_name, p.platform, p.config, p.latency_ms, p.power_w, p.index)


def _space_tuples(space):
    return [_point_tuple(p) for p in space]


class TestParallelParity:
    @pytest.mark.parametrize("name", sorted(apps.APP_BUILDERS))
    def test_parallel_matches_serial(self, name):
        """n_jobs=4 must reproduce the serial Pareto fronts (and full
        spaces) point-for-point on every Setting-I app."""
        app = apps.build(name)
        platforms = runtime.setting("I", "Heter-Poly").platforms
        serial = app.explore(platforms, n_jobs=1)
        parallel = app.explore(platforms, n_jobs=4)
        assert set(serial) == set(parallel)
        for key in serial:
            assert _space_tuples(serial[key]) == _space_tuples(parallel[key])
            assert [
                _point_tuple(p) for p in serial[key].pareto()
            ] == [_point_tuple(p) for p in parallel[key].pareto()]

    def test_n_jobs_all_cpus_sentinel(self):
        import os

        assert resolve_n_jobs(-1) == (os.cpu_count() or 1)
        assert resolve_n_jobs(None) == (os.cpu_count() or 1)
        assert resolve_n_jobs(3) == 3
        with pytest.raises(ValueError):
            resolve_n_jobs(0)

    def test_workers_write_cache_back_to_parent(self):
        """Worker model evaluations must land in the parent's cache, so
        a second parallel exploration is pure lookups (bench warm
        trials depend on this at any n_jobs)."""
        from repro.hardware import clear_model_cache, model_cache

        clear_model_cache()
        try:
            app = apps.build("MF")
            platforms = runtime.setting("I", "Heter-Poly").platforms
            app.explore(platforms, n_jobs=2)
            assert len(model_cache) > 0 and model_cache.misses > 0
            misses_after_cold = model_cache.misses
            app.explore(platforms, n_jobs=2)
            assert model_cache.misses == misses_after_cold
            assert model_cache.hits >= misses_after_cold
        finally:
            clear_model_cache()

    def test_validate_survives_workers(self):
        """The lint-gated exploration path works inside worker processes."""
        app = apps.build("MF")
        platforms = runtime.setting("I", "Heter-Poly").platforms
        serial = app.explore(platforms, validate=True, n_jobs=1)
        parallel = app.explore(platforms, validate=True, n_jobs=2)
        for key in serial:
            assert serial[key].pruned_invalid == parallel[key].pruned_invalid
            assert _space_tuples(serial[key]) == _space_tuples(parallel[key])


class TestSubsampleDeterminism:
    def _points(self):
        kernel = small_kernel("sub", elements=1 << 14, ops=16.0)
        return list(explore_kernel(kernel, AMD_W9100).points)

    def test_input_order_invariant(self):
        """Subsampling is a function of the point *set*: shuffling the
        input (as different worker interleavings could) changes nothing."""
        points = self._points()
        baseline = [_point_tuple(p) for p in _subsample(list(points), 16)]
        for seed in range(5):
            shuffled = list(points)
            random.Random(seed).shuffle(shuffled)
            assert [_point_tuple(p) for p in _subsample(shuffled, 16)] == baseline

    def test_order_key_is_total(self):
        """No two distinct configs may compare equal under the key."""
        points = self._points()
        keys = [_point_order_key(p) for p in points]
        assert len(set(keys)) == len(keys)

    def test_small_spaces_untouched(self):
        points = self._points()[:5]
        assert _subsample(points, 10) is points


class TestParetoFrontier:
    def test_incremental_matches_batch(self):
        rng = random.Random(7)
        items = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(500)]
        frontier = ParetoFrontier()
        for it in items:
            frontier.insert(it, it[0], it[1])
        assert frontier.items() == pareto_front(items, lambda t: t)

    def test_matches_brute_force_dominance(self):
        rng = random.Random(11)
        items = [
            (rng.randrange(20) * 1.0, rng.randrange(20) * 1.0) for _ in range(200)
        ]
        front = pareto_front(items, lambda t: t)
        # No frontier member is strictly dominated by any item.
        for a in front:
            assert not any(
                b[0] <= a[0] and b[1] <= a[1] and b != a for b in front
            )
        # Every excluded item is weakly dominated by some frontier member.
        for it in items:
            if it not in front:
                assert any(f[0] <= it[0] and f[1] <= it[1] for f in front)

    def test_duplicate_keeps_first(self):
        a, b = ("first", (1.0, 1.0)), ("second", (1.0, 1.0))
        frontier = ParetoFrontier()
        assert frontier.insert(a, 1.0, 1.0)
        assert not frontier.insert(b, 1.0, 1.0)
        assert frontier.items() == [a]

    def test_insert_evicts_dominated_run(self):
        frontier = ParetoFrontier()
        for f1, f2 in [(1.0, 9.0), (2.0, 8.0), (3.0, 7.0), (4.0, 1.0)]:
            frontier.insert((f1, f2), f1, f2)
        assert len(frontier) == 4
        # (1.5, 0.5) dominates everything with f1 >= 1.5.
        assert frontier.insert((1.5, 0.5), 1.5, 0.5)
        assert frontier.objectives() == [(1.0, 9.0), (1.5, 0.5)]

    def test_dominated_probe(self):
        frontier = ParetoFrontier()
        frontier.insert("a", 2.0, 2.0)
        assert frontier.dominated(3.0, 3.0)
        assert frontier.dominated(2.0, 2.0)
        assert not frontier.dominated(1.0, 3.0)
        assert not frontier.dominated(3.0, 1.0)

    def test_sorted_invariants(self):
        rng = random.Random(3)
        frontier = ParetoFrontier()
        for _ in range(300):
            f1, f2 = rng.uniform(0, 10), rng.uniform(0, 10)
            frontier.insert((f1, f2), f1, f2)
        objs = frontier.objectives()
        f1s = [o[0] for o in objs]
        f2s = [o[1] for o in objs]
        assert f1s == sorted(f1s) and len(set(f1s)) == len(f1s)
        assert f2s == sorted(f2s, reverse=True) and len(set(f2s)) == len(f2s)
