"""Integration tests: full pipeline from app definition to simulation."""

import pytest

from repro import apps, runtime
from repro.runtime.node import LeafNode
from repro.scheduler import DeviceSlot, PolyScheduler


@pytest.fixture(scope="module")
def asr_setup():
    app = apps.build("ASR")
    systems = {
        name: runtime.setting("I", name)
        for name in ("Homo-GPU", "Homo-FPGA", "Heter-Poly")
    }
    spaces = {
        name: app.explore(system.platforms) for name, system in systems.items()
    }
    return app, systems, spaces


class TestEndToEnd:
    def test_low_load_meets_qos_everywhere(self, asr_setup):
        app, systems, spaces = asr_setup
        for name, system in systems.items():
            arr = runtime.poisson_arrivals(8.0, 5000.0)
            result = runtime.run_simulation(system, app, spaces[name], arr)
            assert result.p99_ms <= app.qos_ms, name

    def test_overload_explodes_latency(self, asr_setup):
        app, systems, spaces = asr_setup
        system = systems["Homo-GPU"]
        arr = runtime.poisson_arrivals(200.0, 5000.0)
        result = runtime.run_simulation(system, app, spaces["Homo-GPU"], arr)
        assert result.p99_ms > 3 * app.qos_ms

    def test_request_conservation(self, asr_setup):
        app, systems, spaces = asr_setup
        arr = runtime.poisson_arrivals(20.0, 4000.0)
        result = runtime.run_simulation(
            systems["Heter-Poly"], app, spaces["Heter-Poly"], arr
        )
        assert len(result.requests) == len(arr)
        for r in result.requests:
            assert r.completion_ms >= r.arrival_ms

    def test_poly_low_load_power_below_baselines(self, asr_setup):
        app, systems, spaces = asr_setup
        powers = {}
        for name, system in systems.items():
            arr = runtime.poisson_arrivals(8.0, 5000.0)
            result = runtime.run_simulation(system, app, spaces[name], arr)
            powers[name] = result.avg_power_w
        assert powers["Heter-Poly"] < powers["Homo-GPU"]
        assert powers["Heter-Poly"] < powers["Homo-FPGA"]

    def test_determinism_per_seed(self, asr_setup):
        app, systems, spaces = asr_setup
        arr = runtime.poisson_arrivals(20.0, 3000.0)
        a = runtime.run_simulation(
            systems["Heter-Poly"], app, spaces["Heter-Poly"], arr, seed=3
        )
        b = runtime.run_simulation(
            systems["Heter-Poly"], app, spaces["Heter-Poly"], arr, seed=3
        )
        assert a.p99_ms == b.p99_ms
        assert a.avg_power_w == b.avg_power_w

    def test_unsorted_arrivals_match_sorted(self, asr_setup):
        """Regression: the power window and run duration derive from
        the *sorted* stream, so caller ordering must not matter."""
        import random

        app, systems, spaces = asr_setup
        arr = runtime.poisson_arrivals(20.0, 3000.0)
        shuffled = list(arr)
        random.Random(42).shuffle(shuffled)
        a = runtime.run_simulation(
            systems["Heter-Poly"], app, spaces["Heter-Poly"], arr, seed=3
        )
        b = runtime.run_simulation(
            systems["Heter-Poly"], app, spaces["Heter-Poly"], shuffled, seed=3
        )
        assert [r.latency_ms for r in a.requests] == [
            r.latency_ms for r in b.requests
        ]
        assert a.duration_ms == b.duration_ms
        assert a.arrival_span_ms == b.arrival_span_ms
        assert (a.power_bins_w == b.power_bins_w).all()

    def test_power_bins_cover_offered_load_window(self, asr_setup):
        app, systems, spaces = asr_setup
        arr = runtime.poisson_arrivals(15.0, 4000.0)
        result = runtime.run_simulation(
            systems["Heter-Poly"], app, spaces["Heter-Poly"], arr, bin_ms=500.0
        )
        import math

        # Power is accounted over the arrival span (not the overload
        # drain); latency statistics still run to the last completion.
        assert len(result.power_bins_w) == math.ceil(max(arr) / 500.0)
        assert result.duration_ms >= max(arr)
        assert all(p > 0 for p in result.power_bins_w)


class TestLeafNodeMechanics:
    def test_gpu_batching_under_queueing(self, asr_setup):
        app, systems, spaces = asr_setup
        node = LeafNode(systems["Homo-GPU"], app, spaces["Homo-GPU"], seed=1)
        for t in runtime.poisson_arrivals(60.0, 4000.0):
            node.submit(t)
        batches = [
            r.batch for d in node.devices for r in d.records if r.batch > 1
        ]
        assert batches, "no GPU batching occurred under load"
        from repro.runtime.node import MAX_GPU_BATCH

        assert max(batches) <= MAX_GPU_BATCH

    def test_fpga_implementations_pin_to_devices(self, asr_setup):
        app, systems, spaces = asr_setup
        node = LeafNode(systems["Homo-FPGA"], app, spaces["Homo-FPGA"], seed=1)
        for t in runtime.poisson_arrivals(30.0, 4000.0):
            node.submit(t)
        # Each FPGA ends up serving few distinct implementations —
        # reconfiguration cost drives affinity.
        for dev in node.devices:
            impls = {(r.kernel_name, r.point_index) for r in dev.records}
            if dev.records:
                assert len(impls) <= 2

    def test_heter_uses_both_families(self, asr_setup):
        app, systems, spaces = asr_setup
        node = LeafNode(systems["Heter-Poly"], app, spaces["Heter-Poly"], seed=1)
        for t in runtime.poisson_arrivals(40.0, 4000.0):
            node.submit(t)
        used = {d.device_id[:3] for d in node.devices if d.records}
        assert used == {"gpu", "fpg"}

    def test_monitor_sees_traffic(self, asr_setup):
        app, systems, spaces = asr_setup
        node = LeafNode(systems["Heter-Poly"], app, spaces["Heter-Poly"], seed=1)
        for t in runtime.poisson_arrivals(20.0, 3000.0):
            node.submit(t)
        assert node.monitor.tail_latency_ms() is not None
        assert 0.5 <= node.monitor.correction_factor <= 2.0

    def test_capacity_estimate_positive(self, asr_setup):
        app, systems, spaces = asr_setup
        node = LeafNode(systems["Heter-Poly"], app, spaces["Heter-Poly"], seed=1)
        node.submit(0.0)
        assert node.capacity_estimate_rps() > 0


class TestSchedulerIntegration:
    def test_two_step_schedule_on_real_spaces(self, asr_setup):
        app, systems, spaces = asr_setup
        system = systems["Heter-Poly"]
        devices = [
            DeviceSlot(device_id, spec.name, spec.device_type)
            for device_id, spec in system.device_inventory()
        ]
        scheduler = PolyScheduler(spaces["Heter-Poly"], app.qos_ms)
        schedule, steps = scheduler.schedule(app.graph, devices)
        assert schedule.makespan_ms <= app.qos_ms
        assert len(schedule) == 4

    def test_frontend_app_simulates(self):
        from repro.apps.base import Application
        from repro.frontend import compile_source
        from repro.hardware.specs import DeviceType

        src = """
        kernel A {
            tensor x (65536) fp32
            pattern m = map(x) func=mul ops=32
        }
        kernel B {
            tensor y (65536) fp32
            pattern r = reduce(y) func=add ops=2
        }
        app Tiny qos=200 {
            use A
            use B
            edge A -> B
        }
        """
        _, graphs = compile_source(src)
        graph, qos = graphs["Tiny"]
        app = Application(
            name="Tiny",
            full_name="frontend-built",
            graph=graph,
            design_targets={
                "A": {DeviceType.GPU: 8, DeviceType.FPGA: 8},
                "B": {DeviceType.GPU: 8, DeviceType.FPGA: 8},
            },
            qos_ms=qos,
        )
        system = runtime.setting("I", "Heter-Poly")
        spaces = app.explore(system.platforms)
        arr = runtime.poisson_arrivals(20.0, 2000.0)
        result = runtime.run_simulation(system, app, spaces, arr)
        assert result.p99_ms > 0


class TestLintIntegration:
    def test_all_bundled_apps_lint_clean(self):
        from repro.lint import LintContext, run_lint

        system = runtime.setting("I", "Heter-Poly")
        for name in sorted(apps.APP_BUILDERS):
            app = apps.build(name)
            report = run_lint(
                app, LintContext(specs=tuple(system.platforms))
            )
            assert report.ok, f"{name}: {report.render()}"

    def test_asr_passes_scheduler_admission(self, asr_setup):
        app, systems, spaces = asr_setup
        system = systems["Heter-Poly"]
        devices = [
            DeviceSlot(device_id, spec.name, spec.device_type)
            for device_id, spec in system.device_inventory()
        ]
        scheduler = PolyScheduler(spaces["Heter-Poly"], app.qos_ms)
        assert scheduler.admission_check(app.graph, devices).ok
