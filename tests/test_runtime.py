"""Unit tests for the runtime substrate: cluster, loadgen, node, sim,
metrics, trace and TCO."""

import numpy as np
import pytest

from repro.runtime import (
    DEFAULT_POWER_CAP_W,
    SchedulingPolicy,
    SystemConfig,
    TCOModel,
    TCOParameters,
    UtilizationTrace,
    constant_arrivals,
    energy_proportionality,
    ideal_power_curve,
    max_throughput_under_qos,
    percentile_latency,
    poisson_arrivals,
    provision,
    setting,
    synthesize_google_trace,
    trace_arrivals,
    violation_ratio,
)
from repro.hardware import AMD_W9100, XILINX_7V3


class TestCluster:
    def test_setting_I_matches_table3(self):
        gpu = setting("I", "Homo-GPU")
        fpga = setting("I", "Homo-FPGA")
        heter = setting("I", "Heter-Poly")
        assert gpu.n_gpus == 2 and gpu.n_fpgas == 0
        assert fpga.n_fpgas == 10 and fpga.n_gpus == 0
        assert heter.n_gpus == 1 and heter.n_fpgas == 5

    def test_setting_II_and_III(self):
        assert setting("II", "Homo-FPGA").n_fpgas == 16
        assert setting("III", "Heter-Poly").n_fpgas == 4

    def test_power_caps_respected(self):
        # Table III's own device counts run within ~5% of the nominal
        # 500 W cap (Setting-III's 8 Arria-10s total 520 W in the paper).
        for number in ("I", "II", "III"):
            for name in ("Homo-FPGA", "Heter-Poly"):
                sys = setting(number, name)
                assert sys.peak_power_w <= DEFAULT_POWER_CAP_W * 1.05, (
                    number, name, sys.peak_power_w
                )

    def test_policies(self):
        assert setting("I", "Heter-Poly").policy == SchedulingPolicy.POLY
        assert setting("I", "Homo-GPU").policy == SchedulingPolicy.STATIC

    def test_unknown_setting_rejected(self):
        with pytest.raises(KeyError):
            setting("IV", "Homo-GPU")
        with pytest.raises(KeyError):
            setting("I", "Hybrid")

    def test_provision_respects_split(self):
        sys = provision(
            "x", AMD_W9100, XILINX_7V3, 500.0, 0.55, SchedulingPolicy.POLY
        )
        assert sys.n_gpus == 1 and sys.n_fpgas == 5
        assert sys.peak_power_w <= 500.0

    def test_provision_endpoints(self):
        pure_fpga = provision(
            "f", AMD_W9100, XILINX_7V3, 500.0, 0.0, SchedulingPolicy.STATIC
        )
        assert pure_fpga.n_gpus == 0 and pure_fpga.n_fpgas == 11

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig("e", None, 0, None, 0, SchedulingPolicy.STATIC)

    def test_device_inventory_ids_unique(self):
        sys = setting("I", "Heter-Poly")
        ids = [d for d, _ in sys.device_inventory()]
        assert len(ids) == len(set(ids)) == 6

    def test_capex_sums_prices(self):
        sys = setting("I", "Heter-Poly")
        assert sys.capex_usd == pytest.approx(4999 + 5 * 3200)


class TestLoadgen:
    def test_constant_interval(self):
        arr = constant_arrivals(100.0, 1000.0)
        assert len(arr) == 100
        gaps = np.diff(arr)
        assert np.allclose(gaps, 10.0)

    def test_poisson_rate(self):
        arr = poisson_arrivals(200.0, 60_000.0)
        assert len(arr) == pytest.approx(200 * 60, rel=0.1)
        assert all(t < 60_000 for t in arr)
        assert arr == sorted(arr)

    def test_zero_rate_empty(self):
        assert constant_arrivals(0.0, 1000.0) == []
        assert poisson_arrivals(0.0, 1000.0) == []

    def test_trace_arrivals_follow_utilization(self):
        arr = trace_arrivals([0.0, 1.0], 10_000.0, 100.0)
        first = [t for t in arr if t < 10_000]
        second = [t for t in arr if t >= 10_000]
        assert len(first) == 0
        assert len(second) > 50

    def test_invalid_durations(self):
        with pytest.raises(ValueError):
            constant_arrivals(10.0, 0.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10.0, -5.0)


class TestMetrics:
    def test_percentile_nearest_rank(self):
        lats = list(range(1, 101))
        assert percentile_latency(lats, 99.0) == 99
        assert percentile_latency(lats, 50.0) == 50
        assert percentile_latency(lats, 100.0) == 100

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile_latency([], 99.0)
        with pytest.raises(ValueError):
            percentile_latency([1.0], 0.0)

    def test_violation_ratio(self):
        assert violation_ratio([100, 150, 250, 300], 200.0) == 0.5

    def test_ep_ideal_system_is_one(self):
        loads = [0.1 * i for i in range(11)]
        powers = [load * 300.0 for load in loads]
        assert energy_proportionality(loads, powers) == pytest.approx(1.0)

    def test_ep_decreases_with_idle_power(self):
        loads = [0.1 * i for i in range(11)]
        flat = [200.0 + load * 100.0 for load in loads]
        steep = [50.0 + load * 250.0 for load in loads]
        assert energy_proportionality(loads, steep) > energy_proportionality(
            loads, flat
        )

    def test_ep_at_most_one_for_concave_curves(self):
        loads = [0.0, 0.5, 1.0]
        powers = [100.0, 200.0, 300.0]
        assert energy_proportionality(loads, powers) <= 1.0

    def test_ideal_power_curve_linear(self):
        curve = ideal_power_curve([0.0, 0.5, 1.0], 400.0)
        assert curve.tolist() == [0.0, 200.0, 400.0]

    def test_max_throughput_under_qos(self):
        assert max_throughput_under_qos([10, 20, 30], [50, 180, 900], 200.0) == 20
        assert max_throughput_under_qos([10], [900], 200.0) == 0.0


class TestTrace:
    def test_synthetic_shape(self):
        t = synthesize_google_trace()
        assert len(t.utilization) == 288
        assert 0.2 < t.mean_utilization < 0.6

    def test_deterministic_by_seed(self):
        a = synthesize_google_trace(seed=7)
        b = synthesize_google_trace(seed=7)
        c = synthesize_google_trace(seed=8)
        assert a.utilization == b.utilization
        assert a.utilization != c.utilization

    def test_bounds_enforced(self):
        t = synthesize_google_trace(base=0.9, diurnal_amplitude=0.5)
        assert all(0.0 <= u <= 1.0 for u in t.utilization)

    def test_resample(self):
        t = synthesize_google_trace()
        coarse = t.resampled(4)
        assert len(coarse.utilization) == len(t.utilization) // 4
        assert coarse.interval_s == t.interval_s * 4

    def test_invalid_trace_rejected(self):
        with pytest.raises(ValueError):
            UtilizationTrace((), 300.0)
        with pytest.raises(ValueError):
            UtilizationTrace((1.5,), 300.0)


class TestTCO:
    def test_monthly_components_positive(self):
        model = TCOModel()
        sys = setting("I", "Heter-Poly")
        assert model.monthly_capex_usd(sys) > 0
        assert model.monthly_infrastructure_usd(sys) > 0
        assert model.monthly_energy_usd(150.0) > 0

    def test_energy_cost_scales_with_power(self):
        model = TCOModel()
        assert model.monthly_energy_usd(300.0) == pytest.approx(
            2 * model.monthly_energy_usd(150.0)
        )

    def test_cost_efficiency_ratio(self):
        model = TCOModel()
        sys = setting("I", "Homo-GPU")
        tco = model.monthly_tco_usd(sys, 150.0)
        assert model.cost_efficiency(sys, 60.0, 150.0) == pytest.approx(60.0 / tco)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TCOParameters(pue=0.9)
        with pytest.raises(ValueError):
            TCOModel().monthly_energy_usd(-1.0)
