"""Unit tests for the parallel pattern graph and Kernel aggregates."""

import pytest

from repro.patterns import Kernel, Map, Pipeline, PPG, Reduce, Tensor


def _two_pattern_ppg():
    x = Tensor("x", (1024,))
    ppg = PPG("k")
    m = ppg.add_pattern(Map((x,), func="mul", ops_per_element=2.0))
    r = ppg.add_pattern(Reduce((x,), func="add"))
    ppg.connect(m, r)
    return ppg, m, r


class TestPPG:
    def test_topological_order(self):
        ppg, m, r = _two_pattern_ppg()
        assert ppg.patterns == [m, r]

    def test_edge_bytes_default_to_producer_output(self):
        ppg, m, r = _two_pattern_ppg()
        assert ppg.edge_between(m, r).bytes_moved == m.output.nbytes

    def test_explicit_edge_bytes(self):
        x = Tensor("x", (64,))
        ppg = PPG("k")
        a, b = ppg.add_pattern(Map((x,))), ppg.add_pattern(Map((x,)))
        edge = ppg.connect(a, b, bytes_moved=12345)
        assert edge.bytes_moved == 12345

    def test_cycle_rejected(self):
        ppg, m, r = _two_pattern_ppg()
        with pytest.raises(ValueError, match="cycle"):
            ppg.connect(r, m)

    def test_connect_unregistered_raises(self):
        ppg, m, _ = _two_pattern_ppg()
        stray = Map((Tensor("y", (4,)),))
        with pytest.raises(KeyError):
            ppg.connect(m, stray)

    def test_sources_and_sinks(self):
        ppg, m, r = _two_pattern_ppg()
        assert ppg.sources() == [m]
        assert ppg.sinks() == [r]

    def test_communication_bytes(self):
        ppg, m, r = _two_pattern_ppg()
        assert ppg.communication_bytes() == m.output.nbytes

    def test_adjacent_pairs(self):
        ppg, m, r = _two_pattern_ppg()
        assert ppg.adjacent_pairs() == [(m, r)]

    def test_empty_ppg_invalid(self):
        with pytest.raises(ValueError, match="empty"):
            PPG("e").validate()

    def test_negative_edge_bytes_rejected(self):
        ppg, m, r2 = _two_pattern_ppg()
        x = Tensor("y", (4,))
        b = ppg.add_pattern(Map((x,)))
        with pytest.raises(ValueError):
            ppg.connect(m, b, bytes_moved=-1)


class TestKernel:
    def test_total_ops_sums_patterns(self):
        ppg, m, r = _two_pattern_ppg()
        k = Kernel("k", ppg)
        assert k.total_ops == m.workload.total_ops + r.workload.total_ops

    def test_io_excludes_intermediates(self):
        ppg, m, r = _two_pattern_ppg()
        k = Kernel("k", ppg)
        assert k.intermediate_bytes == m.output.nbytes
        assert k.io_bytes == sum(t.nbytes for t in m.inputs) + r.output.nbytes

    def test_pattern_kinds_deduplicated_in_order(self):
        x = Tensor("x", (16,))
        ppg = PPG("k")
        a = ppg.add_pattern(Map((x,)))
        b = ppg.add_pattern(Map((x,)))
        c = ppg.add_pattern(Reduce((x,)))
        ppg.connect(a, b)
        ppg.connect(b, c)
        k = Kernel("k", ppg)
        assert [kk.value for kk in k.pattern_kinds] == ["map", "reduce"]

    def test_cdfg_cache(self):
        ppg, m, _ = _two_pattern_ppg()
        k = Kernel("k", ppg)
        assert k.cdfg(m) is k.cdfg(m)

    def test_cdfg_foreign_pattern_rejected(self):
        ppg, _, _ = _two_pattern_ppg()
        k = Kernel("k", ppg)
        foreign = Map((Tensor("z", (4,)),))
        with pytest.raises(KeyError):
            k.cdfg(foreign)

    def test_resident_bytes_deduplicated(self):
        w = Tensor("w", (1024,), "int8", resident=True)
        x = Tensor("x", (64,))
        ppg = PPG("k")
        a = ppg.add_pattern(Map((x, w)))
        b = ppg.add_pattern(Map((x, w)))
        ppg.connect(a, b)
        k = Kernel("k", ppg)
        assert k.resident_bytes == 1024  # counted once

    def test_resident_split_stationary_vs_streamed(self):
        wst = Tensor("w1", (100,), resident=True, stationary=True)
        wls = Tensor("w2", (200,), resident=True, stationary=False)
        x = Tensor("x", (4,))
        ppg = PPG("k")
        ppg.add_pattern(Map((x, wst, wls)))
        k = Kernel("k", ppg)
        assert k.resident_stationary_bytes == 400
        assert k.resident_streamed_bytes == 800

    def test_workload_summary_propagates_steps(self):
        x = Tensor("x", (128,))
        ppg = PPG("k")
        m = ppg.add_pattern(Map((x,)))
        p = ppg.add_pattern(Pipeline((x,), stages=("a",), iterations=37))
        ppg.connect(m, p)
        k = Kernel("k", ppg)
        assert k.workload_summary().sequential_steps == 37

    def test_latency_bias_defaults_to_one(self):
        from repro.hardware.specs import DeviceType

        ppg, _, _ = _two_pattern_ppg()
        k = Kernel("k", ppg)
        assert k.latency_bias(DeviceType.GPU) == 1.0

    def test_latency_bias_lookup(self):
        from repro.hardware.specs import DeviceType

        ppg, _, _ = _two_pattern_ppg()
        k = Kernel("k", ppg, platform_bias={DeviceType.FPGA: 2.5})
        assert k.latency_bias(DeviceType.FPGA) == 2.5
        assert k.latency_bias(DeviceType.GPU) == 1.0
