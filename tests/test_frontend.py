"""Tests for the annotation-language frontend."""

import pytest

from repro.frontend import ParseError, build_kernel, compile_source, parse
from repro.patterns import PatternKind

KERNEL_SRC = """
kernel LSTM {
    tensor x (160, 1024) fp16
    tensor w (4, 1536, 2560) int8 resident
    pattern gates = map(x, w) func=mac ops=30720
    pattern cell = reduce(gates) func=add ops=2
    pattern recur = pipeline(cell) stages=sigmoid,tanh ops=3 iterations=160
}
"""

APP_SRC = KERNEL_SRC + """
kernel FC {
    tensor a (4096) fp16
    tensor wf (4096, 4096) fp16 streamed
    pattern mm = map(a, wf) func=mac ops=8192
}
app Mini qos=150 {
    use LSTM
    use FC
    edge LSTM -> FC bytes=8192
}
"""


class TestParser:
    def test_parse_kernel(self):
        module = parse(KERNEL_SRC)
        k = module.kernels["LSTM"]
        assert len(k.tensors) == 2
        assert len(k.patterns) == 3
        assert k.tensors[1].resident and k.tensors[1].stationary

    def test_streamed_flag(self):
        module = parse(APP_SRC)
        wf = module.kernels["FC"].tensors[1]
        assert wf.resident and not wf.stationary

    def test_comments_ignored(self):
        module = parse("# top\nkernel K {\n  tensor x (4)  # inline\n  pattern m = map(x)\n}\n")
        assert "K" in module.kernels

    def test_app_block(self):
        module = parse(APP_SRC)
        app = module.apps["Mini"]
        assert app.qos_ms == 150.0
        assert app.kernels == ["LSTM", "FC"]
        assert app.edges[0].nbytes == 8192

    def test_unknown_statement_has_line_number(self):
        with pytest.raises(ParseError, match="line 3"):
            parse("kernel K {\n  tensor x (4)\n  banana\n}")

    def test_unknown_input_rejected(self):
        with pytest.raises(ParseError, match="unknown input"):
            parse("kernel K {\n  pattern m = map(nope)\n}")

    def test_duplicate_kernel_rejected(self):
        src = "kernel K {\n pattern m = map(x)\n tensor x (4)\n}\n" * 2
        with pytest.raises(ParseError, match="duplicate"):
            parse(src)

    def test_missing_brace(self):
        with pytest.raises(ParseError, match="missing"):
            parse("kernel K {\n  tensor x (4)\n  pattern m = map(x)\n")

    def test_unmatched_close(self):
        with pytest.raises(ParseError, match="unmatched"):
            parse("}\n")

    def test_kernel_without_patterns_rejected(self):
        with pytest.raises(ParseError, match="no patterns"):
            parse("kernel K {\n  tensor x (4)\n}")

    def test_dep_chain_validated(self):
        with pytest.raises(ParseError, match="unknown pattern"):
            parse("kernel K {\n tensor x (4)\n pattern m = map(x)\n dep m -> q\n}")


class TestBuilder:
    def test_kernel_semantics(self):
        module = parse(KERNEL_SRC)
        k = build_kernel(module.kernels["LSTM"])
        assert k.name == "LSTM"
        assert k.resident_stationary_bytes == 4 * 1536 * 2560
        assert k.workload_summary().sequential_steps == 160
        kinds = [p.kind for p in k.patterns]
        assert kinds == [PatternKind.MAP, PatternKind.REDUCE, PatternKind.PIPELINE]

    def test_implicit_dataflow_edges(self):
        module = parse(KERNEL_SRC)
        k = build_kernel(module.kernels["LSTM"])
        # gates -> cell -> recur through pattern-name inputs
        assert k.ppg.graph.number_of_edges() == 2

    def test_compile_source_app(self):
        kernels, graphs = compile_source(APP_SRC)
        graph, qos = graphs["Mini"]
        assert qos == 150.0
        assert graph.kernel_names == ["LSTM", "FC"]
        assert graph.edge_bytes("LSTM", "FC") == 8192

    def test_built_kernel_flows_through_dse(self):
        from repro.hardware import XILINX_7V3
        from repro.optim import explore_kernel

        kernels, _ = compile_source(APP_SRC)
        space = explore_kernel(kernels["FC"], XILINX_7V3, target_points=8)
        assert len(space) >= 1

    def test_stencil_neighborhood_attr(self):
        src = (
            "kernel K {\n tensor x (64)\n"
            " pattern s = stencil(x) func=max neighborhood=(-1,0,1)\n}"
        )
        kernels, _ = compile_source(src)
        stencil = kernels["K"].patterns[0]
        assert stencil.taps == 3

    def test_tiling_attrs(self):
        src = (
            "kernel K {\n tensor x (64, 64)\n"
            " pattern t = tiling(x) tile=(8,8) grid=(8,8)\n}"
        )
        kernels, _ = compile_source(src)
        t = kernels["K"].patterns[0]
        assert t.tiles == 64

    def test_app_with_unknown_kernel(self):
        with pytest.raises(ParseError, match="unknown kernel"):
            compile_source("app A { \n use Ghost\n }")
