"""Unit tests for the automatic pattern analysis (Section IV-A)."""


from repro.patterns import (
    Gather,
    Kernel,
    Map,
    PPG,
    Reduce,
    Scatter,
    Tensor,
    analyze_kernel,
)


def _gather_kernel():
    x = Tensor("x", (1 << 16,))
    ppg = PPG("g")
    g = ppg.add_pattern(Gather((x,), index_space=4096))
    m = ppg.add_pattern(Map((x,), func="mul", ops_per_element=4.0))
    ppg.connect(g, m)
    return Kernel("g", ppg), g, m


class TestProfiles:
    def test_every_pattern_profiled(self):
        k, g, m = _gather_kernel()
        analysis = analyze_kernel(k)
        assert set(analysis.profiles) == {g, m}

    def test_gather_deferred(self):
        k, g, m = _gather_kernel()
        analysis = analyze_kernel(k)
        assert analysis.profiles[g].deferred
        assert not analysis.profiles[m].deferred
        assert analysis.deferred_patterns == [g]

    def test_roofline_classification(self):
        x = Tensor("x", (1024,))
        ppg = PPG("k")
        hot = ppg.add_pattern(Map((x,), ops_per_element=100.0))
        cold = ppg.add_pattern(Map((x,), ops_per_element=0.5))
        ppg.connect(hot, cold)
        analysis = analyze_kernel(Kernel("k", ppg))
        assert analysis.profiles[hot].bound == "compute"
        assert analysis.profiles[cold].bound == "memory"

    def test_total_parallelism_positive(self):
        k, _, _ = _gather_kernel()
        assert analyze_kernel(k).total_parallelism >= 1


class TestCommunication:
    def test_onchip_cheaper_than_offchip(self):
        k, _, _ = _gather_kernel()
        analysis = analyze_kernel(k)
        assert analysis.communications
        for c in analysis.communications:
            assert c.onchip_cost < c.offchip_cost
            assert c.fusion_benefit > 0

    def test_fusion_candidates_respect_capacity(self):
        k, g, m = _gather_kernel()
        analysis = analyze_kernel(k)
        bytes_moved = analysis.communications[0].bytes_moved
        assert analysis.fusion_candidates(bytes_moved) != []
        assert analysis.fusion_candidates(bytes_moved - 1) == []

    def test_fusion_candidates_sorted_by_benefit(self):
        x = Tensor("x", (1 << 14,))
        small = Tensor("s", (64,))
        ppg = PPG("k")
        a = ppg.add_pattern(Map((x,)))
        b = ppg.add_pattern(Map((x,)))
        c = ppg.add_pattern(Map((small,)))
        d = ppg.add_pattern(Reduce((small,)))
        ppg.connect(a, b)
        ppg.connect(c, d)
        analysis = analyze_kernel(Kernel("k", ppg))
        cands = analysis.fusion_candidates(1 << 30)
        benefits = [c.fusion_benefit for c in cands]
        assert benefits == sorted(benefits, reverse=True)


class TestDeferredResolution:
    def test_gather_adopts_consumer_parallelism(self):
        k, g, m = _gather_kernel()
        analysis = analyze_kernel(k)
        resolved = analysis.resolve_deferred()
        assert resolved[g] == analysis.profiles[m].compute_parallelism

    def test_scatter_adopts_producer_parallelism(self):
        x = Tensor("x", (4096,))
        ppg = PPG("s")
        m = ppg.add_pattern(Map((x,), ops_per_element=2.0))
        s = ppg.add_pattern(Scatter((x,)))
        ppg.connect(m, s)
        analysis = analyze_kernel(Kernel("s", ppg))
        resolved = analysis.resolve_deferred()
        assert resolved[s] == analysis.profiles[m].compute_parallelism

    def test_isolated_deferred_uses_own_parallelism(self):
        x = Tensor("x", (4096,))
        ppg = PPG("g")
        g = ppg.add_pattern(Gather((x,), index_space=128))
        analysis = analyze_kernel(Kernel("g", ppg))
        assert analysis.resolve_deferred()[g] == g.data_parallelism
