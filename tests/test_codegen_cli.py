"""Tests for the OpenCL code generator and the CLI."""


from conftest import small_kernel
from repro.cli import build_parser, main
from repro.codegen import generate_host_snippet, generate_kernel_source
from repro.hardware import ImplConfig
from repro.hardware.specs import DeviceType
from repro.patterns import Gather, Kernel, Map, PPG, Reduce, Tensor


def _gather_kernel():
    x = Tensor("x", (4096,))
    ppg = PPG("g")
    g = ppg.add_pattern(Gather((x,)))
    m = ppg.add_pattern(Map((x,), func="mul", ops_per_element=2.0))
    ppg.connect(g, m)
    return Kernel("g", ppg)


class TestCodegen:
    def test_gpu_source_structure(self):
        k = small_kernel("K")
        src = generate_kernel_source(k, ImplConfig(), DeviceType.GPU)
        assert "__kernel void" in src
        assert "get_global_id" in src
        assert "reqd_work_group_size" in src

    def test_coalescing_remap_emitted(self):
        k = _gather_kernel()
        plain = generate_kernel_source(k, ImplConfig(), DeviceType.GPU)
        coal = generate_kernel_source(
            k, ImplConfig(memory_coalescing=True), DeviceType.GPU
        )
        assert "memory coalescing" not in plain
        assert "memory coalescing" in coal

    def test_scratchpad_uses_local(self):
        k = small_kernel("K")
        src = generate_kernel_source(
            k, ImplConfig(use_scratchpad=True), DeviceType.GPU
        )
        assert "__local" in src
        assert "barrier(CLK_LOCAL_MEM_FENCE)" in src

    def test_gpu_unroll_pragma(self):
        k = small_kernel("K")
        src = generate_kernel_source(k, ImplConfig(unroll=8), DeviceType.GPU)
        assert "#pragma unroll 8" in src

    def test_fpga_pipeline_and_units(self):
        k = small_kernel("K")
        src = generate_kernel_source(
            k,
            ImplConfig(pipelined=True, compute_units=4, bram_ports=8),
            DeviceType.FPGA,
        )
        assert "xcl_pipeline_loop" in src
        assert "num_compute_units(4)" in src
        assert "xcl_array_partition(cyclic, 8)" in src

    def test_fused_emits_single_kernel(self):
        k = _gather_kernel()
        fused = generate_kernel_source(k, ImplConfig(fused=True), DeviceType.FPGA)
        split = generate_kernel_source(k, ImplConfig(fused=False), DeviceType.FPGA)
        assert fused.count("__kernel void") == 1
        assert split.count("__kernel void") == 2
        assert "fused pattern" in fused

    def test_reduce_emits_tree_reduction(self):
        x = Tensor("x", (1024,))
        ppg = PPG("r")
        ppg.add_pattern(Reduce((x,), func="add"))
        src = generate_kernel_source(Kernel("r", ppg), ImplConfig(), DeviceType.GPU)
        assert "work_group_reduce_add" in src

    def test_dtype_mapping(self):
        x = Tensor("x", (64,), "fp16")
        ppg = PPG("h")
        ppg.add_pattern(Map((x,)))
        src = generate_kernel_source(Kernel("h", ppg), ImplConfig(), DeviceType.GPU)
        assert "half" in src

    def test_host_snippet_rounds_global_size(self):
        k = small_kernel("K", elements=1000)
        snippet = generate_host_snippet(k, ImplConfig(work_group_size=128), DeviceType.GPU)
        assert "local_size = 128" in snippet
        # 1000 rounded up to a multiple of 128 = 1024
        assert "global_size = 1024" in snippet

    def test_host_snippet_dvfs_hint(self):
        k = small_kernel("K")
        snippet = generate_host_snippet(
            k, ImplConfig(freq_scale=0.62), DeviceType.GPU
        )
        assert "62%" in snippet


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        for argv in (
            ["dse", "FQT"],
            ["schedule", "ASR", "--setting", "II"],
            ["simulate", "IR", "30"],
            ["codegen", "ASR", "LSTM_acoustic", "--fpga", "--unroll", "4"],
            ["figure", "fig11"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_figure_unknown_name(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_figure_fig11_runs(self, capsys):
        assert main(["figure", "fig11"]) == 0
        assert "utilization trace" in capsys.readouterr().out

    def test_codegen_runs(self, capsys):
        rc = main(
            ["codegen", "FQT", "PRNG", "--fpga", "--pipeline", "--unroll", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "__kernel" in out
        assert "xcl_pipeline_loop" in out

    def test_codegen_unknown_kernel(self, capsys):
        assert main(["codegen", "FQT", "Ghost"]) == 2
