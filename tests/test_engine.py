"""Event-heap engine: golden A/B identity vs. the legacy loop, heap
ordering, ArrivalSpec, and the conservation checks of validation mode.

The tentpole contract: seeded runs through ``engine="event"`` are
float-identical to ``engine="legacy"`` — same request latencies, same
power bins, same obs event stream, fault-free and under chaos.  These
tests are the gate that lets the legacy loop eventually be deleted.
"""

import numpy as np
import pytest

from repro import apps as apps_mod
from repro import runtime
from repro.faults import FaultSchedule
from repro.runtime import (
    ArrivalSpec,
    EventHeap,
    EventHeapEngine,
    EventKind,
    poisson_arrivals,
    run_simulation,
    setting,
)
from repro.runtime.node import LeafNode


@pytest.fixture(scope="module")
def asr():
    """ASR on Setting-I Heter-Poly: the DAG app (diamond joins, FPGA
    pool + one GPU) — the hardest case for the incremental EST tables."""
    app = apps_mod.build("ASR")
    system = setting("I", "Heter-Poly")
    return app, system, app.explore(system.platforms)


@pytest.fixture(scope="module")
def wt():
    """WT: a linear 3-kernel chain."""
    app = apps_mod.build("WT")
    system = setting("I", "Heter-Poly")
    return app, system, app.explore(system.platforms)


def request_sig(result):
    return [
        (r.arrival_ms, r.completion_ms, r.predicted_ms, r.served)
        for r in result.requests
    ]


def node_sig(result):
    node = result.node
    mon = node.monitor
    return (
        mon._correction,
        list(mon._latencies),
        list(mon._arrival_times),
        [
            (
                rec.device_id,
                rec.kernel_name,
                rec.point_index,
                rec.start_ms,
                rec.end_ms,
                rec.power_w,
                rec.batch,
            )
            for dev in node.devices
            for rec in dev.records
        ],
    )


def ab(app, system, spaces, arrivals, **kw):
    legacy = run_simulation(
        system, app, spaces, arrivals, engine="legacy", **kw
    )
    event = run_simulation(system, app, spaces, arrivals, engine="event", **kw)
    return legacy, event


class TestEventHeap:
    def test_pops_in_time_order(self):
        heap = EventHeap()
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            heap.push(t, EventKind.ARRIVAL)
        assert [heap.pop().t_ms for _ in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_same_timestamp_kind_priority(self):
        """At one timestamp: scaling decisions and faults precede
        completions, which precede new arrivals and dispatches."""
        heap = EventHeap()
        kinds = [
            EventKind.DISPATCH,
            EventKind.ARRIVAL,
            EventKind.KERNEL_COMPLETE,
            EventKind.HEARTBEAT,
            EventKind.FAULT,
            EventKind.SCALE,
        ]
        for kind in kinds:
            heap.push(10.0, kind)
        assert [heap.pop().kind for _ in range(len(kinds))] == sorted(
            kinds, key=int
        )

    def test_fifo_among_equal_events(self):
        heap = EventHeap()
        for payload in ("a", "b", "c"):
            heap.push(1.0, EventKind.ARRIVAL, payload)
        assert [heap.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_peek_len_bool(self):
        heap = EventHeap()
        assert not heap and heap.peek() is None
        heap.push(2.0, EventKind.FAULT, "x")
        assert heap and len(heap) == 1
        assert heap.peek().t_ms == 2.0
        assert heap.pop().payload == "x"
        assert len(heap) == 0


class TestArrivalSpec:
    def test_poisson_spec_matches_direct_call(self):
        spec = ArrivalSpec.poisson(80.0, 3_000.0, seed=7)
        direct = poisson_arrivals(
            80.0, 3_000.0, rng=np.random.default_rng(7)
        )
        assert spec.generate() == direct

    def test_supplied_rng_overrides_seed(self):
        spec = ArrivalSpec.poisson(80.0, 3_000.0, seed=7)
        a = spec.generate(np.random.default_rng(11))
        b = poisson_arrivals(80.0, 3_000.0, rng=np.random.default_rng(11))
        assert a == b

    def test_constant_kind_needs_no_rng(self):
        spec = ArrivalSpec.constant(10.0, 1_000.0)
        assert spec.generate() == runtime.constant_arrivals(10.0, 1_000.0)

    def test_trace_kind(self):
        util = (0.2, 0.8, 0.5)
        spec = ArrivalSpec.trace(util, 500.0, 100.0, seed=3)
        direct = runtime.trace_arrivals(
            util, 500.0, 100.0, rng=np.random.default_rng(3)
        )
        assert spec.generate() == direct

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            ArrivalSpec("bursty")

    def test_run_simulation_accepts_spec(self, wt):
        app, system, spaces = wt
        spec = ArrivalSpec.poisson(40.0, 2_000.0, seed=5)
        by_spec = run_simulation(system, app, spaces, spec, seed=0)
        by_list = run_simulation(system, app, spaces, spec.generate(), seed=0)
        assert request_sig(by_spec) == request_sig(by_list)


class TestBatchedLoadgen:
    def test_poisson_matches_scalar_reference(self):
        """The chunked cumsum draw must reproduce the scalar ``t += g``
        loop bit-for-bit (same RNG consumption, same float order)."""
        rng = np.random.default_rng(42)
        batched = poisson_arrivals(200.0, 5_000.0, rng=rng)

        rng = np.random.default_rng(42)
        mean_gap = 1000.0 / 200.0
        n_est = max(int(5_000.0 / mean_gap * 1.3) + 16, 16)
        scalar, t = [], 0.0
        done = False
        while not done:
            gaps = rng.exponential(mean_gap, size=n_est)
            for k, g in enumerate(gaps):
                t = float(np.cumsum(np.concatenate(((t,), gaps[k : k + 1])))[1])
                if t >= 5_000.0:
                    done = True
                    break
                scalar.append(t)
        assert batched == scalar

    def test_empty_and_invalid_streams(self):
        assert poisson_arrivals(0.0, 1_000.0) == []
        with pytest.raises(ValueError):
            poisson_arrivals(10.0, 0.0)


class TestGoldenFaultFree:
    def test_asr_identity(self, asr):
        app, system, spaces = asr
        arrivals = poisson_arrivals(
            120.0, 4_000.0, rng=np.random.default_rng(3)
        )
        legacy, event = ab(app, system, spaces, arrivals, seed=3)
        assert request_sig(legacy) == request_sig(event)
        assert legacy.power_bins_w.tolist() == event.power_bins_w.tolist()
        assert node_sig(legacy) == node_sig(event)

    def test_wt_identity(self, wt):
        app, system, spaces = wt
        arrivals = poisson_arrivals(
            150.0, 4_000.0, rng=np.random.default_rng(9)
        )
        legacy, event = ab(app, system, spaces, arrivals, seed=1)
        assert request_sig(legacy) == request_sig(event)
        assert legacy.power_bins_w.tolist() == event.power_bins_w.tolist()
        assert node_sig(legacy) == node_sig(event)

    @pytest.mark.parametrize("system_name", ["Homo-GPU", "Homo-FPGA"])
    def test_homogeneous_systems(self, system_name):
        app = apps_mod.build("ASR")
        system = setting("I", system_name)
        spaces = app.explore(system.platforms)
        arrivals = poisson_arrivals(
            60.0, 2_000.0, rng=np.random.default_rng(2)
        )
        legacy, event = ab(app, system, spaces, arrivals, seed=2)
        assert request_sig(legacy) == request_sig(event)
        assert legacy.power_bins_w.tolist() == event.power_bins_w.tolist()

    def test_overload_replans_identical(self, asr):
        """High load crosses several replan intervals and forces the
        overflow-alternate path; the engines must still agree."""
        app, system, spaces = asr
        arrivals = poisson_arrivals(
            400.0, 3_000.0, rng=np.random.default_rng(3)
        )
        legacy, event = ab(app, system, spaces, arrivals, seed=3)
        assert request_sig(legacy) == request_sig(event)
        assert node_sig(legacy) == node_sig(event)

    def test_plan_cache_composes(self, asr):
        """event + SchedulePlanCache (the full fast path, compiled
        dispatch programs included) still matches the legacy loop."""
        from repro.scheduler import SchedulePlanCache

        app, system, spaces = asr
        arrivals = poisson_arrivals(
            120.0, 3_000.0, rng=np.random.default_rng(6)
        )
        legacy = run_simulation(
            system, app, spaces, arrivals, seed=6, engine="legacy"
        )
        event = run_simulation(
            system, app, spaces, arrivals, seed=6, engine="event",
            plan_cache=SchedulePlanCache(),
        )
        assert request_sig(legacy) == request_sig(event)
        assert legacy.power_bins_w.tolist() == event.power_bins_w.tolist()

    def test_pareto_and_flash_crowd_streams(self, wt):
        app, system, spaces = wt
        for spec in (
            ArrivalSpec.pareto(80.0, 3_000.0, seed=4),
            ArrivalSpec.flash_crowd(40.0, 3_000.0, 1_000.0, 500.0, seed=4),
        ):
            arrivals = spec.generate()
            legacy, event = ab(app, system, spaces, arrivals, seed=4)
            assert request_sig(legacy) == request_sig(event), spec.kind


class TestGoldenChaos:
    def test_chaos_identity(self, asr):
        """Chaos runs delegate arrivals to the node (the injector owns
        retries/failover), so identity is structural — but the whole
        result must still match the legacy loop exactly."""
        app, system, spaces = asr
        arrivals = poisson_arrivals(
            60.0, 4_000.0, rng=np.random.default_rng(8)
        )
        faults = FaultSchedule.single_crash(
            "fpga0", at_ms=1_000.0, recover_at_ms=2_500.0
        )
        legacy, event = ab(
            app, system, spaces, arrivals, seed=8, faults=faults
        )
        assert request_sig(legacy) == request_sig(event)
        assert legacy.power_bins_w.tolist() == event.power_bins_w.tolist()
        assert legacy.faults.summary() == event.faults.summary()
        assert legacy.availability == event.availability

    def test_traced_identity(self, asr):
        from repro.obs import SpanTracer

        app, system, spaces = asr
        arrivals = poisson_arrivals(
            40.0, 2_000.0, rng=np.random.default_rng(5)
        )
        tracers = []
        for engine in ("legacy", "event"):
            tracer = SpanTracer()
            run_simulation(
                system, app, spaces, arrivals, seed=5, engine=engine,
                tracer=tracer,
            )
            tracers.append(tracer)
        a, b = tracers
        assert len(a.events) == len(b.events)
        assert [e.to_dict() for e in a.events] == [
            e.to_dict() for e in b.events
        ]


class TestValidationMode:
    def test_validate_engine_matches_and_conserves(self, asr):
        """validate=True runs the interpreter with explicit
        KERNEL_COMPLETE events; every dispatched kernel must drain
        exactly one completion, and results must match codegen."""
        app, system, spaces = asr
        arrivals = poisson_arrivals(
            60.0, 2_000.0, rng=np.random.default_rng(4)
        )

        def build_node():
            return LeafNode(system, app, spaces, seed=4)

        fast = EventHeapEngine(build_node()).run(arrivals)
        checked_engine = EventHeapEngine(build_node(), validate=True)
        checked = checked_engine.run(arrivals)
        assert [(r.arrival_ms, r.completion_ms) for r in fast] == [
            (r.arrival_ms, r.completion_ms) for r in checked
        ]
        assert checked_engine.dispatched > 0
        assert checked_engine.completions_drained == checked_engine.dispatched

    def test_unknown_engine_rejected(self, wt):
        app, system, spaces = wt
        with pytest.raises(ValueError, match="unknown engine"):
            run_simulation(
                system, app, spaces, [1.0], engine="threaded"
            )


class TestClusterGolden:
    def _fleet_sig(self, result):
        return (
            [
                (r.arrival_ms, r.completion_ms, r.predicted_ms)
                for r in result.requests
            ],
            result.node_ids,
            [(iv.t_ms, iv.arrivals, iv.p99_ms) for iv in result.intervals],
            [
                (e.t_ms, e.action, e.node_id, e.fleet_size)
                for e in result.timeline
            ],
            result.power_bins_w.tolist(),
        )

    def test_fleet_replay_identity(self, asr):
        from repro.cluster import AutoscalerConfig, ClusterSimulation

        app, system, spaces = asr
        cfg = AutoscalerConfig(min_nodes=1, max_nodes=4)
        spec = ArrivalSpec.flash_crowd(
            80.0, 16_000.0, 6_000.0, 3_000.0, seed=0
        )

        def replay(engine):
            sim = ClusterSimulation(
                [system], app, spaces, config=cfg, seed=5, engine=engine
            )
            return sim.run(spec, horizon_ms=16_000.0)

        legacy = replay("legacy")
        event = replay("event")
        assert self._fleet_sig(legacy) == self._fleet_sig(event)

    def test_fleet_spec_equals_raw_list(self, asr):
        from repro.cluster import AutoscalerConfig, ClusterSimulation

        app, system, spaces = asr
        cfg = AutoscalerConfig(min_nodes=1, max_nodes=3)
        spec = ArrivalSpec.poisson(60.0, 8_000.0)

        def build():
            return ClusterSimulation(
                [system], app, spaces, config=cfg, seed=2
            )

        sim = build()
        raw = spec.generate(sim.arrival_rng())
        by_list = sim.run(raw, horizon_ms=8_000.0)
        by_spec = build().run(spec, horizon_ms=8_000.0)
        assert self._fleet_sig(by_list) == self._fleet_sig(by_spec)

    def test_unknown_cluster_engine_rejected(self, asr):
        from repro.cluster import AutoscalerConfig, ClusterSimulation

        app, system, spaces = asr
        with pytest.raises(ValueError, match="engine"):
            ClusterSimulation(
                [system], app, spaces,
                config=AutoscalerConfig(min_nodes=1, max_nodes=2),
                seed=0, engine="nope",
            )
