"""Property-based tests (hypothesis) on core invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from conftest import synthetic_space
from repro.hardware import AMD_W9100, GPUModel, ImplConfig, PCIeLink, XILINX_7V3, FPGAModel
from repro.hardware.specs import DeviceType
from repro.optim import pareto_front
from repro.patterns import Kernel, Map, PPG, Tensor
from repro.runtime import (
    energy_proportionality,
    max_throughput_under_qos,
    percentile_latency,
)

point_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=1e4),
        st.floats(min_value=0.1, max_value=1e3),
    ),
    min_size=1,
    max_size=40,
)


class TestParetoProperties:
    @given(point_lists)
    def test_frontier_is_subset_and_nondominated(self, points):
        space = synthetic_space("k", "p", DeviceType.GPU, points)
        frontier = space.pareto()
        all_points = list(space)
        assert set(id(p) for p in frontier) <= set(id(p) for p in all_points)
        for a in frontier:
            assert not any(b.dominates(a) for b in all_points)

    @given(point_lists)
    def test_frontier_monotone_tradeoff(self, points):
        space = synthetic_space("k", "p", DeviceType.GPU, points)
        frontier = space.pareto()
        lats = [p.latency_ms for p in frontier]
        pows = [p.power_w for p in frontier]
        assert lats == sorted(lats)
        assert pows == sorted(pows, reverse=True)

    @given(point_lists)
    def test_extreme_points_on_frontier_generic(self, points):
        front = pareto_front(points, lambda t: t)
        min_lat = min(p[0] for p in points)
        assert any(math.isclose(p[0], min_lat) for p in front)


class TestModelProperties:
    @given(
        elements=st.integers(min_value=64, max_value=1 << 20),
        ops=st.floats(min_value=0.5, max_value=512.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_gpu_latency_monotone_in_work(self, elements, ops):
        x1 = Tensor("x", (elements,))
        x2 = Tensor("x", (elements,))
        ppg1, ppg2 = PPG("a"), PPG("b")
        ppg1.add_pattern(Map((x1,), ops_per_element=ops))
        ppg2.add_pattern(Map((x2,), ops_per_element=ops * 2))
        model = GPUModel(AMD_W9100)
        l1 = model.estimate(Kernel("a", ppg1), ImplConfig()).latency_ms
        l2 = model.estimate(Kernel("b", ppg2), ImplConfig()).latency_ms
        assert l2 >= l1 * 0.999

    @given(batch=st.integers(min_value=1, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_gpu_batch_latency_monotone(self, batch):
        x = Tensor("x", (1 << 16,))
        ppg = PPG("k")
        ppg.add_pattern(Map((x,), ops_per_element=16.0))
        k = Kernel("k", ppg)
        model = GPUModel(AMD_W9100)
        lat_b = model.estimate(k, ImplConfig(), batch).latency_ms
        lat_b1 = model.estimate(k, ImplConfig(), batch + 1).latency_ms
        assert lat_b1 >= lat_b * 0.999
        # ...but per-request cost never grows with batching.
        assert lat_b1 / (batch + 1) <= lat_b / batch * 1.01

    @given(
        unroll=st.sampled_from([1, 2, 4, 8, 16, 32]),
        cu=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=20, deadline=None)
    def test_fpga_resources_monotone_in_lanes(self, unroll, cu):
        x = Tensor("x", (1 << 16,))
        ppg = PPG("k")
        ppg.add_pattern(Map((x,), ops_per_element=8.0))
        k = Kernel("k", ppg)
        model = FPGAModel(XILINX_7V3)
        base = model.resources(k, ImplConfig())
        grown = model.resources(k, ImplConfig(unroll=unroll, compute_units=cu))
        assert grown.dsp >= base.dsp
        assert grown.logic_cells_k >= base.logic_cells_k

    @given(nbytes=st.integers(min_value=0, max_value=1 << 30))
    @settings(max_examples=30)
    def test_pcie_superadditive_split(self, nbytes):
        link = PCIeLink()
        whole = link.transfer_ms(nbytes)
        halves = link.transfer_ms(nbytes // 2) + link.transfer_ms(
            nbytes - nbytes // 2
        )
        assert halves >= whole * 0.999  # latency term makes splitting worse


class TestMetricProperties:
    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=200),
        st.floats(min_value=1.0, max_value=100.0),
    )
    def test_percentile_bounds(self, lats, pct):
        p = percentile_latency(lats, pct)
        assert min(lats) <= p <= max(lats)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=2, max_size=200)
    )
    def test_percentile_monotone(self, lats):
        assert percentile_latency(lats, 50.0) <= percentile_latency(lats, 99.0)

    @given(
        idle=st.floats(min_value=0.0, max_value=300.0),
        peak_delta=st.floats(min_value=1.0, max_value=300.0),
        n=st.integers(min_value=3, max_value=11),
    )
    def test_ep_at_most_one_for_affine_curves(self, idle, peak_delta, n):
        # Any affine power curve with non-negative idle power sits on or
        # above its own proportional line => EP <= 1, and EP == 1 only
        # for zero idle power.
        loads = [i / (n - 1) for i in range(n)]
        curve = [idle + load * peak_delta for load in loads]
        ep = energy_proportionality(loads, curve)
        assert ep <= 1.0 + 1e-9
        if idle == 0.0:
            assert ep == pytest.approx(1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=1000),
                st.floats(min_value=1, max_value=10_000),
            ),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=1, max_value=10_000),
    )
    def test_max_throughput_only_counts_passing_levels(self, sweep, bound):
        rps = [r for r, _ in sweep]
        p99 = [p for _, p in sweep]
        knee = max_throughput_under_qos(rps, p99, bound)
        if knee > 0:
            assert any(
                math.isclose(r, knee) and p <= bound for r, p in zip(rps, p99)
            )
        else:
            assert min(p for r, p in sorted(zip(rps, p99))[:1]) > bound or knee == 0


class TestSchedulerProperties:
    @given(
        lat_gpu=st.floats(min_value=1.0, max_value=100.0),
        lat_fpga=st.floats(min_value=1.0, max_value=100.0),
        n=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_chain_schedule_invariants(self, lat_gpu, lat_fpga, n):
        from conftest import chain_graph, synthetic_space
        from repro.scheduler import DeviceSlot, LatencyOptimizer

        graph = chain_graph(n)
        spaces = {}
        for name in graph.kernel_names:
            spaces[(name, AMD_W9100.name)] = synthetic_space(
                name, AMD_W9100.name, DeviceType.GPU, [(lat_gpu, 100.0)]
            )
            spaces[(name, XILINX_7V3.name)] = synthetic_space(
                name, XILINX_7V3.name, DeviceType.FPGA, [(lat_fpga, 20.0)]
            )
        devices = [
            DeviceSlot("gpu0", AMD_W9100.name, DeviceType.GPU),
            DeviceSlot("fpga0", XILINX_7V3.name, DeviceType.FPGA),
        ]
        sched = LatencyOptimizer(spaces).schedule(graph, devices)
        # Precedence holds and makespan is at least the serial minimum.
        names = graph.kernel_names
        for a, b in zip(names, names[1:]):
            assert sched[b].start_ms >= sched[a].end_ms - 1e-9
        assert sched.makespan_ms >= n * min(lat_gpu, lat_fpga) * 0.999
