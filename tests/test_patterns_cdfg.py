"""Unit tests for CDFG lowering and queries."""

import pytest

from repro.patterns import (
    CDFG,
    Map,
    Operator,
    OpKind,
    Pipeline,
    Reduce,
    Stencil,
    Tensor,
    lower_pattern,
)


def _simple_cdfg():
    c = CDFG()
    a = c.add_operator(Operator("a", OpKind.LOAD, trip_count=4))
    b = c.add_operator(Operator("b", OpKind.ARITH, trip_count=10))
    d = c.add_operator(Operator("d", OpKind.STORE, trip_count=4))
    c.add_dependency(a, b)
    c.add_dependency(b, d)
    return c, (a, b, d)


class TestCDFGConstruction:
    def test_add_and_link(self):
        c, (a, b, d) = _simple_cdfg()
        assert len(c) == 3
        assert set(c.operators) == {a, b, d}

    def test_cycle_rejected(self):
        c, (a, b, d) = _simple_cdfg()
        with pytest.raises(ValueError, match="cycle"):
            c.add_dependency(d, a)

    def test_link_requires_registered_nodes(self):
        c, (a, _, _) = _simple_cdfg()
        foreign = Operator("z", OpKind.ARITH)
        with pytest.raises(KeyError):
            c.add_dependency(a, foreign)

    def test_validate_rejects_bad_trip_count(self):
        c = CDFG()
        c.add_operator(Operator("bad", OpKind.ARITH, trip_count=0))
        with pytest.raises(ValueError, match="trip count"):
            c.validate()


class TestCDFGQueries:
    def test_critical_path_is_weighted_longest_path(self):
        c, (a, b, d) = _simple_cdfg()
        # load(4) + arith(1) + store(4) single-instance costs
        assert c.critical_path_cost() == pytest.approx(
            a.cost + b.cost + d.cost
        )

    def test_total_work_counts_trips(self):
        c, (a, b, d) = _simple_cdfg()
        assert c.total_work() == pytest.approx(
            a.total_cost + b.total_cost + d.total_cost
        )

    def test_ilp_at_least_one_for_chain(self):
        c, _ = _simple_cdfg()
        assert c.ilp >= 1.0

    def test_operators_of_kind(self):
        c, (a, b, d) = _simple_cdfg()
        assert c.operators_of(OpKind.LOAD) == [a]
        assert c.operators_of(OpKind.BUFFER) == []


class TestLowering:
    def test_map_lowering_structure(self):
        x = Tensor("x", (1024,))
        cdfg = lower_pattern(Map((x,), func="mul", ops_per_element=4.0))
        assert cdfg.operators_of(OpKind.LOAD)
        assert cdfg.operators_of(OpKind.STORE)
        assert cdfg.buffer_count == 2

    def test_work_preserved_by_lowering(self):
        x = Tensor("x", (1 << 14,))
        p = Map((x,), func="mul", ops_per_element=9.0)
        cdfg = lower_pattern(p)
        # Total arithmetic work matches the workload within chain rounding.
        assert cdfg.arithmetic_ops == pytest.approx(
            p.workload.total_ops, rel=0.2
        )

    def test_special_function_classified(self):
        x = Tensor("x", (64,))
        cdfg = lower_pattern(Map((x,), func="sigmoid", ops_per_element=2.0))
        assert cdfg.operators_of(OpKind.SPECIAL)

    def test_plain_function_is_arith(self):
        x = Tensor("x", (64,))
        cdfg = lower_pattern(Map((x,), func="mul", ops_per_element=2.0))
        assert not cdfg.operators_of(OpKind.SPECIAL)

    def test_reduce_gets_control_node(self):
        x = Tensor("x", (64,))
        cdfg = lower_pattern(Reduce((x,), func="add"))
        assert cdfg.operators_of(OpKind.CONTROL)

    def test_pipeline_chain_matches_depth(self):
        x = Tensor("x", (64,))
        p = Pipeline((x,), stages=("a", "b", "c", "d"), ops_per_stage=1.0)
        cdfg = lower_pattern(p)
        body = [op for op in cdfg.operators if op.name.startswith("pipeline_op")]
        assert len(body) == 4

    def test_stencil_chain_capped(self):
        x = Tensor("x", (64, 64))
        neigh = tuple((i, j) for i in range(-2, 3) for j in range(-2, 3))
        cdfg = lower_pattern(Stencil((x,), neighborhood=neigh))
        body = [op for op in cdfg.operators if op.name.startswith("stencil_op")]
        assert 1 <= len(body) <= 8

    def test_lowered_graph_is_acyclic(self):
        x = Tensor("x", (256,))
        cdfg = lower_pattern(Reduce((x,)))
        cdfg.validate()  # raises on violation
