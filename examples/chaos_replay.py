"""Chaos replay: kill an FPGA mid-run and watch Poly fail over.

Serves a Poisson ASR stream on the Setting-I Heter-Poly node twice —
once fault-free, once with ``fpga0`` crashing mid-run and repairing
two seconds later — and compares availability, tail latency and QoS
violations.  Also prints the failure-to-failover timeline (crash,
missed-heartbeat detection, replanning over the survivors) and a
graceful-degradation variant where every FPGA dies at once and the
lowest-priority requests are shed to protect the rest.

Usage::

    python examples/chaos_replay.py
"""

import numpy as np

from repro import apps, runtime
from repro.faults import FaultEvent, FaultKind, FaultSchedule


def main() -> None:
    app = apps.build("ASR")
    system = runtime.setting("I", "Heter-Poly")
    spaces = app.explore(system.platforms)
    rps, duration_ms = 30.0, 8_000.0
    arrivals = runtime.poisson_arrivals(
        rps, duration_ms, rng=np.random.default_rng(42)
    )

    baseline = runtime.run_simulation(system, app, spaces, arrivals)
    chaos = FaultSchedule.single_crash("fpga0", at_ms=3_000.0, recover_at_ms=5_000.0)
    faulty = runtime.run_simulation(system, app, spaces, arrivals, faults=chaos)

    print(f"ASR on Heter-Poly/Setting-I @ {rps:g} rps, fpga0 down 3.0s-5.0s")
    print(f"{'run':12s} {'avail':>8s} {'p99 ms':>8s} {'mean ms':>8s} {'violations':>11s}")
    for name, r in (("fault-free", baseline), ("chaos", faulty)):
        print(
            f"{name:12s} {r.availability*100:7.2f}% {r.p99_ms:8.1f} "
            f"{r.mean_latency_ms:8.1f} {r.qos_violations(app.qos_ms)*100:10.2f}%"
        )

    report = faulty.faults
    print(f"\n{report!r}")
    for rec in report.recoveries:
        print(
            f"  {rec.device_id}: crashed {rec.failed_ms:.0f} ms, detected "
            f"+{rec.detection_ms:.1f} ms, replanned over survivors "
            f"+{rec.recovery_ms:.1f} ms"
        )

    # Graceful degradation: every FPGA dies at once; low-priority
    # requests are shed so the GPU can keep the rest under the bound.
    blackout = FaultSchedule(
        tuple(
            FaultEvent(3_000.0, FaultKind.DEVICE_CRASH, f"fpga{i}")
            for i in range(5)
        )
    )
    rng = np.random.default_rng(7)
    priorities = rng.uniform(size=len(arrivals))
    shed_run = runtime.run_simulation(
        system, app, spaces, arrivals, faults=blackout, priorities=priorities
    )
    print(
        f"\nall FPGAs down at 3.0s (random priorities): availability "
        f"{shed_run.availability*100:.2f}%, {shed_run.faults.shed} shed, "
        f"p99 {shed_run.p99_ms:.1f} ms"
    )


if __name__ == "__main__":
    main()
