"""Replay a 24-hour diurnal trace against an elastic fleet.

Synthesizes a Google-cluster-style utilization trace and replays it
(time-compressed) against a fleet of Heter-Poly leaf nodes behind the
power-of-two-choices dispatcher and the elastic autoscaler, then prints
the scaling timeline, the hourly fleet-size profile, fleet tail latency
and the monthly TCO / cost efficiency.

Usage::

    python examples/cluster_diurnal.py
"""

import numpy as np

from repro import apps, runtime
from repro.cluster import AutoscalerConfig, ClusterSimulation


def main(
    hours: float = 24.0,
    interval_s: float = 300.0,
    compress: float = 200.0,
    peak_factor: float = 2.5,
    max_nodes: int = 8,
    seed: int = 0,
) -> None:
    trace = runtime.synthesize_google_trace(hours=hours, interval_s=interval_s)
    print(
        f"trace: {len(trace.utilization)} x {trace.interval_s:.0f} s intervals, "
        f"mean utilization {trace.mean_utilization:.2f}, "
        f"replayed {compress:g}x compressed"
    )

    app = apps.build("ASR")
    system = runtime.setting("I", "Heter-Poly")
    spaces = app.explore(system.platforms)
    config = AutoscalerConfig(min_nodes=1, max_nodes=max_nodes)
    sim = ClusterSimulation(system, app, spaces, config=config, seed=seed)
    peak_rps = sim._template_capacity(system) * peak_factor
    result = sim.replay(trace, peak_rps=peak_rps, compress=compress)

    print(f"\nscaling timeline (peak load {peak_rps:.1f} rps):")
    for e in result.timeline:
        print(
            f"  t={e.t_ms / 1000.0:7.1f}s {e.action:9s} {e.node_id:7s} "
            f"{e.reason:15s} -> {e.fleet_size} node(s)"
        )

    # Hourly fleet-size profile: mean serving nodes per hour of trace time.
    per_hour_intervals = max(int(round(3600.0 / interval_s)), 1)
    sizes = np.asarray(
        [iv.n_serving for iv in result.intervals], dtype=float
    )
    n_hours = len(sizes) // per_hour_intervals
    if n_hours:
        print("\nhourly mean fleet size:")
        hourly = sizes[: n_hours * per_hour_intervals].reshape(
            n_hours, per_hour_intervals
        ).mean(axis=1)
        for hour, size in enumerate(hourly):
            print(f"  {hour:02d}:00  {size:5.2f}  " + "#" * int(round(size * 4)))

    served = sum(1 for r in result.requests if r.served)
    up, down = result.scale_up_lags_ms, result.scale_down_lags_ms
    print(
        f"\nfleet: {result.mean_fleet_size:.2f} nodes mean, "
        f"{result.launches} launch(es), {result.terminations} termination(s)"
    )
    print(
        f"requests: {len(result.requests)} "
        f"({served / len(result.requests) * 100:.2f}% served, "
        f"{result.served_rps:.1f} rps)"
    )
    print(
        f"latency: p50 {result.p50_ms:.1f} ms, p99 {result.p99_ms:.1f} ms "
        f"(QoS {result.qos_ms:g} ms met in "
        f"{result.qos_ok_frac() * 100:.0f}% of intervals)"
    )
    if up:
        print(f"scale-up lag: {result.scale_up_lag_ms:.0f} ms mean")
    if down:
        print(f"scale-down lag: {result.scale_down_lag_ms:.0f} ms mean")
    print(
        f"power: {result.fleet_avg_power_w:.1f} W fleet average\n"
        f"cost: {result.monthly_tco_usd():.2f} USD/month "
        f"-> {result.cost_efficiency():.4f} rps/USD"
    )


if __name__ == "__main__":
    main()
