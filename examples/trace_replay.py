"""Replay a 24-hour datacenter trace (the Fig. 11/12 study).

Synthesizes a Google-cluster-style diurnal utilization trace, replays
it (time-compressed) against all three Setting-I architectures running
ASR, and prints the per-system power, energy and QoS outcomes plus an
hourly power profile.

Usage::

    python examples/trace_replay.py
"""

import numpy as np

from repro import apps, runtime


def main() -> None:
    trace = runtime.synthesize_google_trace()
    print(
        f"trace: {len(trace.utilization)} x {trace.interval_s:.0f} s intervals, "
        f"mean utilization {trace.mean_utilization:.2f}"
    )

    app = apps.build("ASR")
    compress = 24  # simulate each 5-minute interval for 12.5 s
    interval_ms = trace.interval_s * 1000.0 / compress
    peak_rps = 30.0

    results = {}
    for sys_name in ("Homo-GPU", "Homo-FPGA", "Heter-Poly"):
        system = runtime.setting("I", sys_name)
        spaces = app.explore(system.platforms)
        arrivals = runtime.trace_arrivals(trace.utilization, interval_ms, peak_rps)
        results[sys_name] = runtime.run_simulation(
            system, app, spaces, arrivals, bin_ms=interval_ms, warmup_frac=0.02
        )

    print(f"\n{'system':11s} {'avg W':>7s} {'energy kJ':>10s} {'p99 ms':>8s} {'violations':>11s}")
    for name, r in results.items():
        print(
            f"{name:11s} {r.avg_power_w:7.0f} {r.energy_j/1000:10.1f} "
            f"{r.p99_ms:8.0f} {r.qos_violations(app.qos_ms)*100:10.2f}%"
        )

    poly = results["Heter-Poly"]
    for base in ("Homo-GPU", "Homo-FPGA"):
        saving = 1.0 - poly.energy_j / results[base].energy_j
        print(f"Heter-Poly energy saving vs {base}: {saving*100:.0f}%")

    # Hourly power profile of the Poly system.
    print("\nHeter-Poly hourly power profile:")
    bins = np.asarray(poly.power_bins_w)
    per_hour = bins[: 288].reshape(24, 12).mean(axis=1)
    for hour, watts in enumerate(per_hour):
        print(f"  {hour:02d}:00  {watts:6.0f} W  " + "#" * int(watts / 5))


if __name__ == "__main__":
    main()
