"""Bring your own kernel: the annotation frontend end-to-end.

Defines a new two-kernel application in Poly's annotation language (a
video super-resolution service: a stencil upscaler feeding a dense
refinement network), explores its design spaces, and serves it on a
Heter-Poly node — without touching the library's built-in benchmarks.

Usage::

    python examples/custom_kernel.py
"""

from repro import runtime
from repro.apps.base import Application
from repro.frontend import compile_source
from repro.hardware.specs import DeviceType
from repro.scheduler import DeviceSlot, PolyScheduler

SOURCE = """
# Video super-resolution: upscale -> refine.

kernel Upscale {
    tensor frame (1080, 1920) fp16
    # 5-tap polyphase filter around each output pixel.
    pattern tiles  = tiling(frame) tile=(64, 64) grid=(17, 30)
    pattern taps   = stencil(tiles) func=mac ops=4 neighborhood=(-2,-1,0,1,2)
    pattern blend  = map(taps) func=mac ops=6
}

kernel Refine {
    tensor up (2160, 3840) fp16
    tensor w (64, 9, 64) fp16 resident
    # A small residual CNN: gather patches, filter, stream layers.
    pattern patches = gather(up) index_space=1048576
    pattern conv    = map(patches, w) func=mac ops=96
    pattern layers  = pipeline(conv) stages=l0,l1,l2 ops=4 iterations=3
    pattern out     = scatter(layers) index_space=1048576
}

app VSR qos=100 {
    use Upscale
    use Refine
    edge Upscale -> Refine
}
"""


def main() -> None:
    kernels, graphs = compile_source(SOURCE)
    graph, qos_ms = graphs["VSR"]
    app = Application(
        name="VSR",
        full_name="Video Super-Resolution (custom)",
        graph=graph,
        design_targets={
            name: {DeviceType.GPU: 48, DeviceType.FPGA: 64}
            for name in graph.kernel_names
        },
        qos_ms=qos_ms,
    )
    print(f"built {app} from annotation source")
    for kernel in app.kernels:
        wl = kernel.workload_summary()
        print(
            f"  {kernel.name:8s} {kernel.total_ops/1e6:9.1f} Mops, "
            f"{kernel.io_bytes/1e6:6.1f} MB io, steps={wl.sequential_steps}"
        )

    system = runtime.setting("I", "Heter-Poly")
    spaces = app.explore(system.platforms)

    devices = [
        DeviceSlot(device_id, spec.name, spec.device_type)
        for device_id, spec in system.device_inventory()
    ]
    schedule, swaps = PolyScheduler(spaces, app.qos_ms).schedule(
        app.graph, devices
    )
    print("\nschedule for one frame:")
    print(schedule.gantt())
    print(f"energy swaps applied: {len(swaps)}")

    arrivals = runtime.poisson_arrivals(rps=24.0, duration_ms=6000.0)  # 24 fps
    result = runtime.run_simulation(system, app, spaces, arrivals)
    print(
        f"\nserved a 24 fps stream: p99 {result.p99_ms:.1f} ms "
        f"(bound {qos_ms:.0f} ms), avg power {result.avg_power_w:.0f} W"
    )


if __name__ == "__main__":
    main()
