"""Compare the three Table-III architectures on one benchmark.

Reproduces the core of the paper's static evaluation for a chosen
benchmark: sweeps the load, prints the tail-latency curve, the maximum
QoS-compliant throughput, and the energy proportionality of Homo-GPU,
Homo-FPGA and Heter-Poly.

Usage::

    python examples/compare_architectures.py [APP] [SETTING]

    APP     one of ASR FQT IR CS MF WT (default FQT)
    SETTING one of I II III            (default I)
"""

import sys

from repro import apps, runtime
from repro.experiments.harness import PEAK_RPS


def main(app_name: str = "FQT", setting_number: str = "I") -> None:
    app = apps.build(app_name)
    loads = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0)

    print(f"== {app.full_name} ({app.name}), Setting-{setting_number}, "
          f"QoS {app.qos_ms:.0f} ms ==\n")
    header = "system      " + "".join(f"{int(l*100):>7d}%" for l in loads)
    print("p99 tail latency (ms) per load level:")
    print(header)

    summary = {}
    for sys_name in ("Homo-GPU", "Homo-FPGA", "Heter-Poly"):
        system = runtime.setting(setting_number, sys_name)
        spaces = app.explore(system.platforms)
        p99s, powers = [], []
        for load in loads:
            arrivals = runtime.poisson_arrivals(load * PEAK_RPS, 8000.0)
            result = runtime.run_simulation(system, app, spaces, arrivals)
            p99s.append(result.p99_ms)
            powers.append(result.avg_power_w)
        knee = runtime.max_throughput_under_qos(
            [l * PEAK_RPS for l in loads], p99s, app.qos_ms
        )
        ep = runtime.energy_proportionality(loads, powers)
        summary[sys_name] = (knee, ep, powers[0])
        print(f"{sys_name:11s} " + "".join(f"{p:8.0f}" for p in p99s))

    print("\nsummary:")
    print(f"{'system':11s} {'max RPS':>8s} {'EP':>6s} {'idle-ish W':>11s}")
    for sys_name, (knee, ep, low_power) in summary.items():
        print(f"{sys_name:11s} {knee:8.0f} {ep:6.2f} {low_power:11.0f}")

    poly_knee = summary["Heter-Poly"][0]
    best_base = max(summary["Homo-GPU"][0], summary["Homo-FPGA"][0])
    if best_base > 0:
        print(
            f"\nHeter-Poly sustains {poly_knee/best_base:.2f}x the best "
            "homogeneous baseline under the QoS bound."
        )


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "FQT",
        sys.argv[2] if len(sys.argv) > 2 else "I",
    )
