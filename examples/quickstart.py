"""Quickstart: explore, schedule and serve the ASR benchmark.

Runs the full Poly pipeline on the paper's motivating application:

1. offline DSE for every ASR kernel on the Heter-Poly platforms;
2. the two-step runtime schedule of one request (Fig. 6);
3. a short request-level simulation against the 200 ms QoS bound.

Usage::

    python examples/quickstart.py
"""

from repro import apps, runtime
from repro.scheduler import DeviceSlot, PolyScheduler


def main() -> None:
    app = apps.build("ASR")
    system = runtime.setting("I", "Heter-Poly")
    print(f"application : {app}")
    print(f"system      : {system}")

    # 1. Offline kernel analysis + design space exploration.
    print("\n-- offline DSE --")
    spaces = app.explore(system.platforms)
    for kernel in app.kernels:
        for spec in system.platforms:
            space = spaces[(kernel.name, spec.name)]
            fastest = space.min_latency()
            greenest = space.max_efficiency()
            print(
                f"{kernel.name:15s} on {spec.name[:24]:24s} "
                f"{len(space):4d} designs, fastest {fastest.latency_ms:6.1f} ms, "
                f"most efficient {greenest.latency_ms:6.1f} ms @ "
                f"{greenest.power_w:5.1f} W"
            )

    # 2. Two-step runtime scheduling of a single request.
    print("\n-- two-step schedule (Fig. 6) --")
    devices = [
        DeviceSlot(device_id, spec.name, spec.device_type)
        for device_id, spec in system.device_inventory()
    ]
    scheduler = PolyScheduler(spaces, app.qos_ms)
    schedule, swaps = scheduler.schedule(app.graph, devices)
    print(schedule.gantt())
    for swap in swaps:
        print(f"  energy swap: {swap!r}")

    # 3. Serve a Poisson request stream and check the tail.
    print("\n-- simulation --")
    arrivals = runtime.poisson_arrivals(rps=30.0, duration_ms=10_000.0)
    result = runtime.run_simulation(system, app, spaces, arrivals)
    print(f"served {len(result.requests)} requests at ~30 RPS")
    print(f"p99 tail latency : {result.p99_ms:7.1f} ms (bound {app.qos_ms:.0f} ms)")
    print(f"mean latency     : {result.mean_latency_ms:7.1f} ms")
    print(f"average power    : {result.avg_power_w:7.1f} W")
    print(f"QoS violations   : {result.qos_violations(app.qos_ms)*100:6.2f} %")


if __name__ == "__main__":
    main()
